"""Tests for the durability layer: journal, streams, checkpoints, recovery.

The fault-injection tests simulate crashes at every stage of the
checkpoint protocol (via ``DurableMaintainer``'s ``fault_hook``) and with
torn journal tails, then assert the recovered index is
``semantically_equal`` to building from scratch on the final graph — the
exactness bar the maintenance algorithms themselves are held to.
"""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.errors import (
    EdgeListParseError,
    EdgeNotFoundError,
    IndexPersistenceError,
    ParameterError,
)
from repro.graph.adjacency import Graph
from repro.graph.fingerprint import graph_fingerprint
from repro.graph.generators import erdos_renyi_gnm
from repro.core.index import KPIndex
from repro.service import (
    DurableMaintainer,
    ErrorPolicy,
    JournalRecord,
    UpdateJournal,
    iter_update_stream,
    read_journal,
    read_update_stream,
)
from repro.service.durable import JOURNAL_NAME, MANIFEST_NAME


def edges_of(seed: int, n: int = 16, m: int = 40) -> list:
    return list(erdos_renyi_gnm(n, m, seed=seed).edges())


def from_scratch(edges) -> KPIndex:
    return KPIndex.build(Graph(edges))


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with UpdateJournal(path) as journal:
            journal.append("insert", 1, 2)
            journal.append("insert", 2, 3)
            journal.append("delete", 1, 2)
        records = read_journal(path)
        assert [(r.op, r.u, r.v, r.seq) for r in records] == [
            ("insert", 1, 2, 0),
            ("insert", 2, 3, 1),
            ("delete", 1, 2, 2),
        ]

    def test_after_seq_filters_the_tail(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with UpdateJournal(path) as journal:
            for i in range(5):
                journal.append("insert", i, i + 1)
        tail = read_journal(path, after_seq=2)
        assert [r.seq for r in tail] == [3, 4]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_journal(str(tmp_path / "nope.jsonl")) == []

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with UpdateJournal(path) as journal:
            journal.append("insert", 1, 2)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op":"insert","u":3,')  # crash mid-append
        records = read_journal(path)
        assert [r.seq for r in records] == [0]

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        lines = [
            JournalRecord("insert", 1, 2, 0).to_line(),
            "garbage",
            JournalRecord("insert", 2, 3, 1).to_line(),
        ]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(IndexPersistenceError):
            read_journal(path)

    def test_sequence_regression_raises(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        lines = [
            JournalRecord("insert", 1, 2, 5).to_line(),
            JournalRecord("insert", 2, 3, 4).to_line(),
            JournalRecord("insert", 3, 4, 6).to_line(),
        ]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(IndexPersistenceError):
            read_journal(path)

    def test_unknown_op_rejected_on_append(self, tmp_path):
        with UpdateJournal(str(tmp_path / "j.jsonl")) as journal:
            with pytest.raises(IndexPersistenceError):
                journal.append("upsert", 1, 2)

    def test_commit_counts_pending_records(self, tmp_path):
        journal = UpdateJournal(str(tmp_path / "j.jsonl"))
        journal.append("insert", 1, 2)
        journal.append("insert", 2, 3)
        assert journal.commit() == 2
        assert journal.commit() == 0
        journal.close()

    def test_batch_record_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        ops = [("insert", 1, 2), ("insert", 2, 3), ("delete", 1, 2)]
        with UpdateJournal(path) as journal:
            journal.append("insert", 7, 8)
            journal.append_batch(ops)
        records = read_journal(path)
        assert [r.seq for r in records] == [0, 1]
        assert records[0].ops is None
        assert records[1].op == "batch"
        assert records[1].u is None and records[1].v is None
        assert records[1].ops == tuple(ops)

    def test_batch_record_is_one_line_one_seq(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with UpdateJournal(path) as journal:
            journal.append_batch([("insert", i, i + 1) for i in range(20)])
            journal.append("insert", 99, 100)
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        assert len(lines) == 2
        assert [r.seq for r in read_journal(path)] == [0, 1]

    def test_torn_batch_line_drops_the_whole_batch(self, tmp_path):
        # the all-or-nothing property: a crash mid-append of a batch
        # record must never leave a prefix of the batch behind.
        path = str(tmp_path / "journal.jsonl")
        with UpdateJournal(path) as journal:
            journal.append("insert", 1, 2)
            journal.append_batch([("insert", 3, 4), ("insert", 5, 6)])
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(lines[0])
            handle.write(lines[1][: len(lines[1]) // 2])  # torn mid-append
        records = read_journal(path)
        assert [(r.op, r.seq) for r in records] == [("insert", 0)]

    def test_batch_with_unknown_inner_op_rejected(self, tmp_path):
        with UpdateJournal(str(tmp_path / "j.jsonl")) as journal:
            with pytest.raises(IndexPersistenceError):
                journal.append_batch([("insert", 1, 2), ("upsert", 3, 4)])


# ----------------------------------------------------------------------
# update streams
# ----------------------------------------------------------------------
class TestUpdateStream:
    def test_prefixes_and_bare_pairs(self):
        text = "# header\n+ 1 2\n\n- 1 2\n3 4\n"
        ops = list(iter_update_stream(io.StringIO(text)))
        assert ops == [("insert", 1, 2), ("delete", 1, 2), ("insert", 3, 4)]

    def test_extra_tokens_rejected_with_line_number(self):
        with pytest.raises(EdgeListParseError) as excinfo:
            read_update_stream(io.StringIO("+ 1 2\n+ 3 4 99\n"))
        assert excinfo.value.line_number == 2

    def test_extra_tokens_ignore_opt_in(self):
        ops = read_update_stream(
            io.StringIO("+ 1 2 1700000000\n"), extra_tokens="ignore"
        )
        assert ops == [("insert", 1, 2)]

    def test_string_labels(self):
        ops = read_update_stream(
            io.StringIO("+ alice bob\n"), int_vertices=False
        )
        assert ops == [("insert", "alice", "bob")]

    def test_short_line_raises(self):
        with pytest.raises(EdgeListParseError):
            read_update_stream(io.StringIO("+ 1\n"))

    def test_bad_extra_tokens_mode(self):
        with pytest.raises(ParameterError):
            read_update_stream(io.StringIO(""), extra_tokens="whatever")


# ----------------------------------------------------------------------
# durable maintainer: normal operation
# ----------------------------------------------------------------------
class TestDurableMaintainer:
    def test_fresh_directory_starts_empty_and_checkpoints(self, tmp_path):
        state = str(tmp_path / "state")
        edges = edges_of(seed=1)
        with DurableMaintainer(state, checkpoint_every=7) as durable:
            report = durable.apply([("insert", u, v) for u, v in edges])
            durable.checkpoint()
        assert report.applied == len(edges)
        assert report.checkpoints == len(edges) // 7
        assert os.path.exists(os.path.join(state, MANIFEST_NAME))

    def test_matches_from_scratch_after_mixed_stream(self, tmp_path):
        state = str(tmp_path / "state")
        edges = edges_of(seed=2)
        deletions = edges[::5]
        with DurableMaintainer(state, checkpoint_every=10) as durable:
            durable.apply([("insert", u, v) for u, v in edges])
            durable.apply([("delete", u, v) for u, v in deletions])
            remaining = [e for e in edges if e not in deletions]
            assert durable.index.semantically_equal(from_scratch(remaining))

    def test_clean_reopen_resumes_exactly(self, tmp_path):
        state = str(tmp_path / "state")
        edges = edges_of(seed=3)
        with DurableMaintainer(state, checkpoint_every=5) as durable:
            durable.apply([("insert", u, v) for u, v in edges])
            durable.checkpoint()
        with DurableMaintainer(state) as durable:
            assert durable.recovery is not None
            assert durable.recovery.replayed == 0
            assert durable.index.semantically_equal(from_scratch(edges))

    def test_reopened_maintainer_stays_exact_under_updates(self, tmp_path):
        # The satellite property: a maintainer resumed on a *loaded* index
        # must stay exact under further updates.
        state = str(tmp_path / "state")
        edges = edges_of(seed=4, n=14, m=30)
        first, second = edges[:20], edges[20:]
        with DurableMaintainer(state) as durable:
            durable.apply([("insert", u, v) for u, v in first])
            durable.checkpoint()
        with DurableMaintainer(state) as durable:
            durable.apply([("insert", u, v) for u, v in second])
            durable.apply([("delete", u, v) for u, v in first[::4]])
            remaining = [e for e in edges if e not in first[::4]]
            assert durable.index.semantically_equal(from_scratch(remaining))

    def test_skip_policy_counts_and_continues(self, tmp_path):
        state = str(tmp_path / "state")
        with DurableMaintainer(state, on_error="skip") as durable:
            report = durable.apply(
                [
                    ("insert", 1, 2),
                    ("insert", 1, 2),  # duplicate
                    ("delete", 8, 9),  # never existed
                    ("insert", 2, 3),
                ]
            )
        assert report.applied == 2
        assert report.skipped == 2

    def test_fail_policy_raises_and_stays_consistent(self, tmp_path):
        state = str(tmp_path / "state")
        with DurableMaintainer(state, on_error=ErrorPolicy.FAIL) as durable:
            with pytest.raises(EdgeNotFoundError):
                durable.apply([("insert", 1, 2), ("delete", 5, 6)])
        # the failed record was journaled but is skipped on recovery
        with DurableMaintainer(state) as durable:
            assert durable.index.semantically_equal(from_scratch([(1, 2)]))

    def test_isolated_vertices_survive_checkpoints(self, tmp_path):
        state = str(tmp_path / "state")
        with DurableMaintainer(state) as durable:
            durable.apply(
                [("insert", 1, 2), ("insert", 2, 3), ("delete", 2, 3)]
            )
            durable.checkpoint()
            n_before = durable.graph.num_vertices
        with DurableMaintainer(state) as durable:
            assert durable.graph.num_vertices == n_before
            assert durable.graph.has_vertex(3)

    def test_string_labels_round_trip(self, tmp_path):
        state = str(tmp_path / "state")
        ops = [("insert", "a", "b"), ("insert", "b", "c"), ("insert", "c", "a")]
        with DurableMaintainer(state) as durable:
            durable.apply(ops)
            durable.checkpoint()
        with DurableMaintainer(state) as durable:
            assert sorted(durable.query(2, 1.0)) == ["a", "b", "c"]

    def test_mixed_label_types_rejected_at_checkpoint(self, tmp_path):
        state = str(tmp_path / "state")
        with DurableMaintainer(state) as durable:
            durable.apply([("insert", 1, "b")])
            with pytest.raises(IndexPersistenceError):
                durable.checkpoint()

    def test_must_exist_refuses_fresh_directory(self, tmp_path):
        with pytest.raises(IndexPersistenceError):
            DurableMaintainer(str(tmp_path / "nope"), must_exist=True)

    def test_checkpoint_every_validated(self, tmp_path):
        with pytest.raises(ParameterError):
            DurableMaintainer(str(tmp_path / "s"), checkpoint_every=0)

    def test_journal_compaction_bounds_the_file(self, tmp_path):
        state = str(tmp_path / "state")
        with DurableMaintainer(state, checkpoint_every=5) as durable:
            durable.apply([("insert", u, v) for u, v in edges_of(seed=5)])
            durable.checkpoint()
            journal = os.path.join(state, JOURNAL_NAME)
            assert read_journal(journal) == []

    def test_closed_maintainer_refuses_updates(self, tmp_path):
        durable = DurableMaintainer(str(tmp_path / "state"))
        durable.close()
        with pytest.raises(IndexPersistenceError):
            durable.insert_edge(1, 2)


# ----------------------------------------------------------------------
# fault injection: crashes mid-checkpoint, torn tails, corrupt files
# ----------------------------------------------------------------------
class _SimulatedCrash(Exception):
    pass


def _run_until_crash(state, edges, crash_stage, checkpoint_every=4):
    """Insert edges with periodic checkpoints, crashing at ``crash_stage``
    of the *second* checkpoint; returns how many edges were applied."""
    seen = {"count": 0}

    def hook(stage):
        if stage == crash_stage:
            seen["count"] += 1
            if seen["count"] >= 2:
                raise _SimulatedCrash(stage)

    durable = DurableMaintainer(
        state, checkpoint_every=checkpoint_every, fault_hook=hook
    )
    applied = 0
    try:
        report = durable.apply([("insert", u, v) for u, v in edges])
        applied = report.applied
    except _SimulatedCrash:
        applied = durable.stats.applied
    # no close(): the "process" died
    return applied


class TestCrashRecovery:
    @pytest.mark.parametrize(
        "stage",
        [
            "journal-committed",
            "graph-written",
            "index-written",
            "before-manifest",
            "manifest-written",
        ],
    )
    def test_crash_mid_checkpoint_recovers_exactly(self, tmp_path, stage):
        state = str(tmp_path / "state")
        edges = edges_of(seed=11)
        applied = _run_until_crash(state, edges, stage)
        assert 0 < applied < len(edges)  # the stream was partially applied
        with DurableMaintainer(state) as durable:
            assert durable.recovery is not None
            assert durable.index.semantically_equal(
                from_scratch(edges[:applied])
            )
            # ... and the recovered service keeps working
            durable.apply([("insert", u, v) for u, v in edges[applied:]])
            assert durable.index.semantically_equal(from_scratch(edges))

    def test_crash_with_torn_journal_tail(self, tmp_path):
        state = str(tmp_path / "state")
        edges = edges_of(seed=12)
        applied = _run_until_crash(state, edges, "before-manifest")
        with open(os.path.join(state, JOURNAL_NAME), "a") as handle:
            handle.write('{"op":"insert","u":')  # torn mid-append
        with DurableMaintainer(state) as durable:
            assert durable.index.semantically_equal(
                from_scratch(edges[:applied])
            )

    def test_recovery_replays_only_the_tail(self, tmp_path):
        state = str(tmp_path / "state")
        edges = edges_of(seed=13)
        applied = _run_until_crash(state, edges, "before-manifest")
        durable = DurableMaintainer(state)
        recovery = durable.recovery
        durable.close()
        assert recovery is not None
        # fewer records replayed than total applied: the checkpoint held
        assert 0 < recovery.replayed < applied

    def test_corrupt_manifest_raises_typed_error(self, tmp_path):
        state = str(tmp_path / "state")
        with DurableMaintainer(state) as durable:
            durable.apply([("insert", 1, 2)])
            durable.checkpoint()
        with open(os.path.join(state, MANIFEST_NAME), "w") as handle:
            handle.write('{"format_version": ')
        with pytest.raises(IndexPersistenceError):
            DurableMaintainer(state)

    def test_tampered_index_checksum_detected(self, tmp_path):
        state = str(tmp_path / "state")
        with DurableMaintainer(state) as durable:
            durable.apply([("insert", u, v) for u, v in edges_of(seed=14)])
            durable.checkpoint()
        manifest = json.load(open(os.path.join(state, MANIFEST_NAME)))
        index_path = os.path.join(state, manifest["index"])
        document = json.load(open(index_path))
        document["payload"]["num_edges"] += 1  # bit-flip the payload
        with open(index_path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(IndexPersistenceError):
            DurableMaintainer(state)

    def test_fingerprint_mismatch_detected(self, tmp_path):
        state = str(tmp_path / "state")
        with DurableMaintainer(state) as durable:
            durable.apply([("insert", u, v) for u, v in edges_of(seed=15)])
            durable.checkpoint()
        manifest = json.load(open(os.path.join(state, MANIFEST_NAME)))
        graph_path = os.path.join(state, manifest["graph"])
        with open(graph_path, "a") as handle:
            handle.write("998 999\n")  # edge the index never saw
        with pytest.raises(IndexPersistenceError):
            DurableMaintainer(state)


# ----------------------------------------------------------------------
# batched durability: apply_batch journaling, crashes, recovery
# ----------------------------------------------------------------------
def _run_batched_until_crash(
    state, edges, crash_stage, batch=4, checkpoint_every=8
):
    """Apply edges through ``apply_batch`` groups, crashing at
    ``crash_stage`` of the *second* checkpoint; returns edges applied."""
    seen = {"count": 0}

    def hook(stage):
        if stage == crash_stage:
            seen["count"] += 1
            if seen["count"] >= 2:
                raise _SimulatedCrash(stage)

    durable = DurableMaintainer(
        state, checkpoint_every=checkpoint_every, fault_hook=hook
    )
    applied = 0
    try:
        for i in range(0, len(edges), batch):
            group = [("insert", u, v) for u, v in edges[i : i + batch]]
            durable.apply_batch(group)
            applied += len(group)
    except _SimulatedCrash:
        applied = durable.stats.applied
    # no close(): the "process" died
    return applied


class TestBatchedDurability:
    def test_apply_batch_journals_one_record_per_group(self, tmp_path):
        state = str(tmp_path / "state")
        edges = edges_of(seed=21)
        with DurableMaintainer(state, checkpoint_every=10**9) as durable:
            for i in range(0, len(edges), 8):
                durable.apply_batch(
                    [("insert", u, v) for u, v in edges[i : i + 8]]
                )
            groups = -(-len(edges) // 8)
            assert durable.stats.journaled == groups
            records = read_journal(os.path.join(state, JOURNAL_NAME))
            assert len(records) == groups
            assert all(r.op == "batch" for r in records)

    def test_batch_replay_on_reopen(self, tmp_path):
        state = str(tmp_path / "state")
        edges = edges_of(seed=22)
        with DurableMaintainer(state, checkpoint_every=10**9) as durable:
            for i in range(0, len(edges), 8):
                durable.apply_batch(
                    [("insert", u, v) for u, v in edges[i : i + 8]]
                )
        with DurableMaintainer(state) as durable:
            assert durable.recovery is not None
            assert durable.recovery.replayed == -(-len(edges) // 8)
            assert durable.recovery.skipped == 0
            assert durable.index.semantically_equal(from_scratch(edges))

    @pytest.mark.parametrize(
        "stage",
        [
            "journal-committed",
            "graph-written",
            "index-written",
            "before-manifest",
            "manifest-written",
            "compaction",
        ],
    )
    def test_crash_mid_batched_checkpoint_recovers_exactly(
        self, tmp_path, stage
    ):
        state = str(tmp_path / "state")
        edges = edges_of(seed=23)
        applied = _run_batched_until_crash(state, edges, stage)
        assert 0 < applied < len(edges)
        assert applied % 4 == 0  # whole batches only: all-or-nothing
        with DurableMaintainer(state) as durable:
            assert durable.recovery is not None
            assert durable.index.semantically_equal(
                from_scratch(edges[:applied])
            )
            # ... and the recovered service accepts further batches
            durable.apply_batch(
                [("insert", u, v) for u, v in edges[applied:]]
            )
            assert durable.index.semantically_equal(from_scratch(edges))

    def test_torn_final_batch_record_recovers_without_it(self, tmp_path):
        # mid-batch-journal-write crash: the torn single-line record
        # means the whole batch vanishes — never a prefix of it.
        state = str(tmp_path / "state")
        edges = edges_of(seed=24)
        with DurableMaintainer(state, checkpoint_every=10**9) as durable:
            for i in range(0, len(edges), 4):
                durable.apply_batch(
                    [("insert", u, v) for u, v in edges[i : i + 4]]
                )
        journal = os.path.join(state, JOURNAL_NAME)
        with open(journal, encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(journal, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
            handle.write(lines[-1][: len(lines[-1]) // 2])
        with DurableMaintainer(state) as durable:
            # each journal line is one 4-edge batch; the torn final one
            # is gone wholesale
            assert durable.index.semantically_equal(
                from_scratch(edges[: 4 * (len(lines) - 1)])
            )

    def test_invalid_batch_is_skipped_whole_under_skip_policy(
        self, tmp_path
    ):
        state = str(tmp_path / "state")
        with DurableMaintainer(state, on_error="skip") as durable:
            durable.apply_batch([("insert", 1, 2), ("insert", 2, 3)])
            report = durable.apply_batch(
                [("insert", 3, 4), ("delete", 8, 9)]  # delete never existed
            )
            assert report.applied == 0
            assert report.skipped == 2
            assert not durable.graph.has_edge(3, 4)  # all-or-nothing
            assert durable.index.semantically_equal(
                from_scratch([(1, 2), (2, 3)])
            )
        # the invalid batch was never journaled: validation precedes the
        # write-ahead hook, so recovery sees only the good batch.
        with DurableMaintainer(state) as durable:
            assert durable.recovery is not None
            assert durable.recovery.skipped == 0
            assert durable.index.semantically_equal(
                from_scratch([(1, 2), (2, 3)])
            )

    def test_invalid_batch_raises_whole_under_fail_policy(self, tmp_path):
        state = str(tmp_path / "state")
        with DurableMaintainer(state, on_error=ErrorPolicy.FAIL) as durable:
            durable.apply_batch([("insert", 1, 2)])
            with pytest.raises(EdgeNotFoundError):
                durable.apply_batch([("insert", 3, 4), ("delete", 8, 9)])
            assert not durable.graph.has_edge(3, 4)
        with DurableMaintainer(state) as durable:
            assert durable.index.semantically_equal(from_scratch([(1, 2)]))

    def test_mixed_singles_and_batches_recover_together(self, tmp_path):
        state = str(tmp_path / "state")
        edges = edges_of(seed=25)
        with DurableMaintainer(state, checkpoint_every=10**9) as durable:
            durable.apply([("insert", u, v) for u, v in edges[:5]])
            durable.apply_batch([("insert", u, v) for u, v in edges[5:15]])
            durable.insert_edge(*edges[15])
            durable.apply_batch(
                [("delete", u, v) for u, v in edges[:3]]
            )
        with DurableMaintainer(state) as durable:
            assert durable.index.semantically_equal(
                from_scratch(edges[3:16])
            )


# ----------------------------------------------------------------------
# service observability counters
# ----------------------------------------------------------------------
class TestServiceCounters:
    def test_counters_recorded_when_collecting(self, tmp_path):
        from repro.obs import collecting

        state = str(tmp_path / "state")
        edges = edges_of(seed=16)
        with collecting() as metrics:
            with DurableMaintainer(state, checkpoint_every=10) as durable:
                durable.apply([("insert", u, v) for u, v in edges])
                durable.checkpoint()
            with DurableMaintainer(state) as durable:
                pass
        snapshot = metrics.snapshot()
        assert snapshot.counter("service.journal_records") == len(edges)
        assert snapshot.counter("service.checkpoints") >= 2
        assert snapshot.counter("service.recoveries") == 1

    def test_counters_are_catalogued(self):
        from repro.obs.names import COUNTERS

        for name in (
            "service.checkpoints",
            "service.journal_records",
            "service.replayed",
            "service.recoveries",
        ):
            assert name in COUNTERS


# ----------------------------------------------------------------------
# graph fingerprints
# ----------------------------------------------------------------------
class TestGraphFingerprint:
    def test_insertion_order_does_not_matter(self):
        edges = edges_of(seed=17)
        a = graph_fingerprint(Graph(edges))
        b = graph_fingerprint(Graph(list(reversed(edges))))
        assert a == b

    def test_orientation_does_not_matter(self):
        a = graph_fingerprint(Graph([(1, 2), (2, 3)]))
        b = graph_fingerprint(Graph([(2, 1), (3, 2)]))
        assert a == b

    def test_different_edges_differ(self):
        a = graph_fingerprint(Graph([(1, 2), (2, 3)]))
        b = graph_fingerprint(Graph([(1, 2), (2, 4)]))
        assert a != b

    def test_label_types_are_distinguished(self):
        a = graph_fingerprint(Graph([(1, 2)]))
        b = graph_fingerprint(Graph([("1", "2")]))
        assert a.edge_hash != b.edge_hash

    def test_dict_round_trip_and_matches(self):
        from repro.graph.fingerprint import GraphFingerprint

        g = Graph(edges_of(seed=18))
        fp = graph_fingerprint(g)
        again = GraphFingerprint.from_dict(fp.to_dict())
        assert again == fp
        assert again.matches(g)
        g.add_edge(997, 998)
        assert not again.matches(g)
