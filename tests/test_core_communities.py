"""Tests for community views over (k,p)-cores."""

import pytest

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_gnm, planted_partition
from repro.core.communities import (
    kp_communities,
    kp_community_of,
    parameter_grid,
    strongest_community_parameters,
)
from repro.core.decomposition import kp_core_decomposition
from repro.core.kpcore import kp_core_vertices


@pytest.fixture
def two_cliques():
    """Two disjoint K4s joined by nothing — two communities at (3, 0.9)."""
    g = Graph()
    for base in (0, 10):
        block = [base + i for i in range(4)]
        for i, u in enumerate(block):
            for v in block[i + 1 :]:
                g.add_edge(u, v)
    return g


class TestCommunities:
    def test_disjoint_cliques_split(self, two_cliques):
        communities = kp_communities(two_cliques, 3, 0.9)
        assert len(communities) == 2
        assert {frozenset(c.vertices) for c in communities} == {
            frozenset({0, 1, 2, 3}),
            frozenset({10, 11, 12, 13}),
        }

    def test_sorted_largest_first(self):
        g = planted_partition(2, 8, 0.9, 0.0, seed=1)
        g.add_edge(100, 101)  # dust, never in a 3-core
        communities = kp_communities(g, 3, 0.5)
        sizes = [len(c) for c in communities]
        assert sizes == sorted(sizes, reverse=True)

    def test_union_is_the_core(self):
        g = erdos_renyi_gnm(30, 90, seed=2)
        communities = kp_communities(g, 2, 0.5)
        union = set()
        for c in communities:
            union |= c.vertices
        assert union == kp_core_vertices(g, 2, 0.5)

    def test_empty_core_gives_no_communities(self, triangle):
        assert kp_communities(triangle, 5, 0.5) == []

    def test_induced_view(self, two_cliques):
        community = kp_communities(two_cliques, 3, 0.9)[0]
        sub = community.induced(two_cliques)
        assert sub.num_vertices == 4
        assert sub.num_edges == 6


class TestCommunityOf:
    def test_member_lookup(self, two_cliques):
        community = kp_community_of(two_cliques, 11, 3, 0.9)
        assert community is not None
        assert community.vertices == frozenset({10, 11, 12, 13})

    def test_outsider_gives_none(self, triangle_with_tail):
        assert kp_community_of(triangle_with_tail, 3, 2, 0.9) is None


class TestStrongestParameters:
    def test_matches_decomposition(self):
        g = erdos_renyi_gnm(20, 60, seed=3)
        decomposition = kp_core_decomposition(g)
        for v in g.vertices():
            answer = strongest_community_parameters(g, v, decomposition)
            cn = decomposition.core_numbers[v]
            if cn == 0:
                assert answer is None
            else:
                k, p = answer
                assert k == cn
                assert p == decomposition.arrays[cn].pn_map()[v]  # noqa: KP002 exact-double oracle

    def test_vertex_is_in_its_strongest_community(self):
        g = erdos_renyi_gnm(20, 60, seed=4)
        for v in list(g.vertices())[:8]:
            answer = strongest_community_parameters(g, v)
            if answer is None:
                continue
            k, p = answer
            assert v in kp_core_vertices(g, k, p)

    def test_isolated_vertex(self):
        g = Graph([(0, 1)])
        g.add_vertex(9)
        assert strongest_community_parameters(g, 9) is None


class TestParameterGrid:
    def test_grid_shape_and_monotonicity(self):
        g = planted_partition(3, 10, 0.7, 0.05, seed=5)
        cells = parameter_grid(g, ks=(1, 2, 3), ps=(0.2, 0.5, 0.8))
        assert len(cells) == 9
        # core size shrinks along p for each fixed k
        for k in (1, 2, 3):
            sizes = [c.core_size for c in cells if c.k == k]
            assert sizes == sorted(sizes, reverse=True)

    def test_cells_match_direct_computation(self):
        g = erdos_renyi_gnm(18, 50, seed=6)
        for cell in parameter_grid(g, ks=(2,), ps=(0.4, 0.7)):
            assert cell.core_size == len(kp_core_vertices(g, cell.k, cell.p))

    def test_empty_cell_flag(self, triangle):
        cells = parameter_grid(triangle, ks=(5,), ps=(0.5,))
        assert cells[0].is_empty

    def test_grid_validation(self, triangle):
        with pytest.raises(ParameterError):
            parameter_grid(triangle, ks=(0,), ps=(0.5,))
        with pytest.raises(ParameterError):
            parameter_grid(triangle, ks=(1,), ps=(1.5,))
