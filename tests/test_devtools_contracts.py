"""Runtime invariant contracts: activation gate, clean runs, seeded bugs.

Three claims are pinned down here: (1) the contract layer is off by
default and costs only a cached boolean check, (2) with contracts active
the real algorithms pass every check, and (3) a deliberately corrupted
index or output *is caught* — the contracts are not vacuous.
"""

from __future__ import annotations

import pytest

from repro.devtools import contracts
from repro.devtools.contracts import (
    check_bounds_sandwich,
    check_decomposition,
    check_kp_core_output,
    check_query_result,
    contracts_active,
    refresh_from_env,
    set_contracts_active,
)
from repro.errors import ContractViolationError
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_gnp
from repro.core.decomposition import kp_core_decomposition
from repro.core.index import KPIndex
from repro.core.kpcore import kp_core_vertices
from repro.core.maintenance import KPIndexMaintainer


@pytest.fixture
def active():
    """Force contracts on for one test, restoring the prior state."""
    previous = set_contracts_active(True)
    yield
    set_contracts_active(previous)


@pytest.fixture
def sample_graph() -> Graph:
    return erdos_renyi_gnp(40, 0.15, seed=11)


# ----------------------------------------------------------------------
# activation gate
# ----------------------------------------------------------------------
def test_set_contracts_active_returns_previous_state():
    first = set_contracts_active(True)
    try:
        assert contracts_active() is True
        assert set_contracts_active(False) is True
        assert contracts_active() is False
    finally:
        set_contracts_active(first)


def test_refresh_from_env_parses_truthy_values(monkeypatch):
    previous = contracts_active()
    try:
        for value, expected in [
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("", False), ("off", False),
        ]:
            monkeypatch.setenv(contracts.ENV_VAR, value)
            assert refresh_from_env() is expected
        monkeypatch.delenv(contracts.ENV_VAR)
        assert refresh_from_env() is False
    finally:
        set_contracts_active(previous)


def test_inactive_contracts_never_invoke_checks(monkeypatch, sample_graph):
    """With the switch off, decorated calls must not reach any check."""
    previous = set_contracts_active(False)
    try:
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("check ran with contracts inactive")

        monkeypatch.setattr(contracts, "check_query_result", boom)
        monkeypatch.setattr(contracts, "check_kp_core_output", boom)
        maintainer = KPIndexMaintainer(sample_graph.copy())
        assert isinstance(maintainer.query(2, 0.5), list)
        kp_core_vertices(sample_graph, 2, 0.5)
    finally:
        set_contracts_active(previous)


# ----------------------------------------------------------------------
# clean runs under active contracts
# ----------------------------------------------------------------------
def test_real_algorithms_satisfy_their_contracts(active, sample_graph):
    kp_core_vertices(sample_graph, 2, 0.5)
    kp_core_decomposition(sample_graph)
    maintainer = KPIndexMaintainer(sample_graph.copy(), strict=True)
    edges = sorted(sample_graph.edges())[:4]
    for u, v in edges:
        maintainer.delete_edge(u, v)
        maintainer.query(2, 0.6)
    for u, v in edges:
        maintainer.insert_edge(u, v)
    maintainer.query(3, 0.75)
    assert maintainer.index.semantically_equal(KPIndex.build(sample_graph))


# ----------------------------------------------------------------------
# direct check functions reject bad data
# ----------------------------------------------------------------------
def test_check_kp_core_output_rejects_non_core(triangle):
    # {0, 1} is not a (2, 0)-core: each member keeps only one neighbour.
    with pytest.raises(ContractViolationError):
        check_kp_core_output(triangle, {0, 1}, 2, 0.0)
    check_kp_core_output(triangle, {0, 1, 2}, 2, 1.0)


def test_check_query_result_rejects_wrong_answer(triangle):
    with pytest.raises(ContractViolationError, match="missing"):
        check_query_result(triangle, 2, 1.0, [0, 1])
    check_query_result(triangle, 2, 1.0, [0, 1, 2])


def test_check_decomposition_rejects_unsorted_and_nonmonotone(sample_graph):
    good = kp_core_decomposition(sample_graph)
    check_decomposition(good)

    class BadFixed:
        def __init__(self, p_numbers, pn):
            self.p_numbers = p_numbers
            self._pn = pn

        def pn_map(self):
            return self._pn

    class BadDecomposition:
        def __init__(self, arrays):
            self.arrays = arrays

    unsorted = BadDecomposition({1: BadFixed([0.5, 0.25], {0: 0.5, 1: 0.25})})
    with pytest.raises(ContractViolationError, match="not sorted"):
        check_decomposition(unsorted)

    nonmonotone = BadDecomposition(
        {
            1: BadFixed([0.25], {0: 0.25}),
            2: BadFixed([0.5], {0: 0.5}),
        }
    )
    with pytest.raises(ContractViolationError, match="non-increasing"):
        check_decomposition(nonmonotone)


def test_check_bounds_sandwich_rejects_inflated_p_numbers(sample_graph):
    index = KPIndex.build(sample_graph)
    array = index.array(2)
    check_bounds_sandwich(sample_graph, array, array.vertices, check_lower=True)
    # Inflate every p-number past any sound upper bound.
    array.p_numbers = [1.0] * len(array.p_numbers)
    array._rebuild_levels()
    with pytest.raises(ContractViolationError, match="upper bound"):
        check_bounds_sandwich(sample_graph, array, array.vertices)


# ----------------------------------------------------------------------
# seeded corruption is caught end-to-end through the decorators
# ----------------------------------------------------------------------
def _drop_first_vertex(maintainer: KPIndexMaintainer, k: int) -> None:
    array = maintainer.index.array(k)
    assert len(array) > 1
    array.vertices = array.vertices[1:]
    array.p_numbers = array.p_numbers[1:]
    array._rebuild_levels()


def test_corrupted_index_is_caught_by_query_contract(active, sample_graph):
    maintainer = KPIndexMaintainer(sample_graph.copy())
    _drop_first_vertex(maintainer, 2)
    with pytest.raises(ContractViolationError, match="disagrees"):
        maintainer.query(2, 0.0)


def test_corrupted_index_passes_silently_when_inactive(sample_graph):
    previous = set_contracts_active(False)
    try:
        maintainer = KPIndexMaintainer(sample_graph.copy())
        _drop_first_vertex(maintainer, 2)
        # No contract, no raise: the bug would sail through unnoticed.
        maintainer.query(2, 0.0)
    finally:
        set_contracts_active(previous)
