"""Tests for the process-parallel decomposition driver."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ParameterError
from repro.graph.compact import CompactAdjacency
from repro.graph.generators import erdos_renyi_gnm
from repro.kcore.decomposition import core_numbers_compact
from repro.core.decomposition import kp_core_decomposition
from repro.core.parallel import (
    _chunk_ks,
    default_workers,
    k_core_sizes,
    peel_all_k,
)
from repro.core.peel_engines import DEFAULT_ENGINE, available_engines, get_engine


def _assert_same_decomposition(a, b):
    assert a.degeneracy == b.degeneracy
    assert dict(a.core_numbers) == dict(b.core_numbers)
    assert set(a.arrays) == set(b.arrays)
    for k, fixed in a.arrays.items():
        other = b.arrays[k]
        assert tuple(other.order) == tuple(fixed.order), k
        assert tuple(other.p_numbers) == tuple(fixed.p_numbers), k


class TestSnapshotPickling:
    def test_round_trip_preserves_csr_and_labels(self, figure1_like_graph):
        snapshot = CompactAdjacency(figure1_like_graph)
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.indptr == snapshot.indptr
        assert clone.indices == snapshot.indices
        assert clone.labels == snapshot.labels

    def test_round_trip_rebuilds_label_index(self, figure1_like_graph):
        snapshot = CompactAdjacency(figure1_like_graph)
        clone = pickle.loads(pickle.dumps(snapshot))
        for v in figure1_like_graph.vertices():
            assert clone.index_of(v) == snapshot.index_of(v)

    def test_round_trip_preserves_rank_sorting(self):
        g = erdos_renyi_gnm(40, 160, seed=3)
        snapshot = CompactAdjacency(g)
        core, _ = core_numbers_compact(snapshot)
        snapshot.sort_neighbors_by_rank_desc(core)
        clone = pickle.loads(pickle.dumps(snapshot))
        for i in range(snapshot.num_vertices):
            for k in range(0, max(core, default=0) + 2):
                assert clone.rank_prefix_length(
                    i, k, core
                ) == snapshot.rank_prefix_length(i, k, core)


class TestScheduling:
    def test_k_core_sizes_are_suffix_counts(self):
        core = [0, 1, 1, 2, 3, 3, 3]
        assert k_core_sizes(core, 3) == [7, 6, 4, 3]

    def test_default_workers_is_positive(self):
        assert default_workers() >= 1

    def test_chunks_cover_every_k_once_in_order(self):
        sizes = [100, 90, 60, 30, 10, 4, 2, 1, 1]
        ks = list(range(1, 9))
        chunks = _chunk_ks(ks, sizes, pool_size=2)
        flattened = [k for chunk in chunks for k in chunk]
        assert flattened == ks  # partition, original (ascending-k) order
        assert all(chunk for chunk in chunks)

    def test_expensive_ks_get_singleton_chunks(self):
        # k=1 alone dwarfs the target chunk cost, so it must not share a
        # chunk with (and thereby delay) anything else.
        sizes = [0, 1000, 10, 8, 6, 4, 2, 1, 1]
        ks = list(range(1, 9))
        chunks = _chunk_ks(ks, sizes, pool_size=4)
        assert chunks[0] == [1]

    def test_tiny_tail_is_batched(self):
        # A long tail of unit-cost ks should travel in batches, not as
        # one dispatch per k.
        sizes = [0] + [1] * 64
        ks = list(range(1, 65))
        chunks = _chunk_ks(ks, sizes, pool_size=2)
        assert 1 < len(chunks) < len(ks)

    def test_chunking_handles_degenerate_inputs(self):
        assert _chunk_ks([], [0], pool_size=4) == []
        assert _chunk_ks([1], [0, 5], pool_size=4) == [[1]]
        assert _chunk_ks([1, 2], [0, 0, 0], pool_size=1) == [[1], [2]]


class TestPeelAllK:
    def test_matches_serial_engine(self):
        g = erdos_renyi_gnm(60, 240, seed=11)
        snapshot = CompactAdjacency(g)
        core, _ = core_numbers_compact(snapshot)
        snapshot.sort_neighbors_by_rank_desc(core)
        degeneracy = max(core, default=0)
        peel = get_engine(DEFAULT_ENGINE)
        serial = {k: peel(snapshot, core, k) for k in range(1, degeneracy + 1)}
        parallel = peel_all_k(
            snapshot, core, degeneracy, engine=DEFAULT_ENGINE, workers=3
        )
        assert parallel == serial


class TestWorkersParameter:
    @pytest.mark.parametrize("engine", available_engines())
    def test_workers_4_identical_to_workers_1(self, engine):
        g = erdos_renyi_gnm(70, 320, seed=13)
        serial = kp_core_decomposition(g, engine=engine, workers=1)
        parallel = kp_core_decomposition(g, engine=engine, workers=4)
        _assert_same_decomposition(serial, parallel)

    def test_string_labelled_vertices_survive_the_pool(self):
        g = erdos_renyi_gnm(25, 90, seed=4)
        relabelled = type(g)(
            (f"v{u}", f"v{w}") for u, w in g.edges()
        )
        serial = kp_core_decomposition(relabelled, workers=1)
        parallel = kp_core_decomposition(relabelled, workers=2)
        _assert_same_decomposition(serial, parallel)

    def test_invalid_workers_rejected(self, triangle):
        with pytest.raises(ParameterError, match="workers"):
            kp_core_decomposition(triangle, workers=0)

    def test_p_number_lookup_after_parallel_run(self):
        g = erdos_renyi_gnm(30, 120, seed=9)
        decomposition = kp_core_decomposition(g, workers=2)
        fixed = decomposition.arrays[1]
        for v, pn in zip(fixed.order, fixed.p_numbers):
            assert decomposition.p_number(v, 1) == pn  # noqa: KP002 exact-double oracle


class TestCrossProcessObservability:
    """Worker metrics and trace events must merge back into the parent.

    The decomposition engines record all their own counters, so a
    parallel run's merged counters equal a single-process run exactly —
    the only extra names are the ``decomp.parallel.*`` pool bookkeeping.
    """

    @staticmethod
    def _run(workers):
        from repro.obs import collecting, names, set_collector
        from repro.obs.trace import set_tracer, tracing

        g = erdos_renyi_gnm(45, 180, seed=21)
        previous_collector = set_collector(None)
        previous_tracer = set_tracer(None)
        try:
            with collecting() as metrics, tracing() as tracer:
                kp_core_decomposition(g, workers=workers)
            return metrics.snapshot(), tracer.events()
        finally:
            set_collector(previous_collector)
            set_tracer(previous_tracer)

    @staticmethod
    def _core_counters(snapshot):
        return {
            name: value
            for name, value in snapshot.counters.items()
            if not name.startswith("decomp.parallel")
        }

    def test_merged_counters_equal_single_process_run(self):
        serial, _ = self._run(workers=1)
        parallel, _ = self._run(workers=3)
        assert self._core_counters(parallel) == self._core_counters(serial)

    def test_merged_histograms_equal_single_process_run(self):
        serial, _ = self._run(workers=1)
        parallel, _ = self._run(workers=3)
        assert set(parallel.histograms) >= set(serial.histograms)
        for name, hist in serial.histograms.items():
            merged = parallel.histograms[name]
            assert merged.count == hist.count, name
            assert merged.total == hist.total, name
            assert merged.minimum == hist.minimum, name
            assert merged.maximum == hist.maximum, name

    def test_pool_bookkeeping_counters_present(self):
        from repro.obs import names

        parallel, _ = self._run(workers=3)
        tasks = parallel.counter(names.DECOMP_PARALLEL_TASKS)
        assert tasks >= 1
        per_worker = parallel.histograms[names.DECOMP_PARALLEL_WORKERS]
        assert 1 <= per_worker.count <= 3  # one observation per worker pid
        assert per_worker.total == tasks
        chunks = parallel.counter(names.DECOMP_PARALLEL_CHUNKS)
        assert 1 <= chunks <= tasks  # chunks batch tasks, never split them

    def test_worker_peel_events_absorbed_coherently(self):
        import os

        from repro.obs import names

        _, events = self._run(workers=3)
        peels = [e for e in events if e.name == names.TRACE_PEEL_FIXED_K]
        assert peels, "worker peel spans must be shipped back"
        # one peel event per k-array, all joined to one trace
        assert len({e.trace_id for e in peels}) == 1
        assert any(e.pid != os.getpid() for e in peels)
        for event in peels:
            assert event.attrs["engine"] in available_engines()
            assert event.attrs["k"] >= 1
            assert event.dur >= 0.0

    def test_no_orphan_parents_after_merge(self):
        _, events = self._run(workers=3)
        span_ids = {e.span_id for e in events}
        assert len(span_ids) == len(events)  # ids never collide across pids
        for event in events:
            if event.parent_id is not None:
                assert event.parent_id in span_ids
