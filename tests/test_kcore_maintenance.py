"""Unit and randomized tests for incremental core maintenance."""

import random

import pytest

from repro.errors import EdgeExistsError, EdgeNotFoundError, SelfLoopError
from repro.graph.adjacency import Graph
from repro.graph.generators import barabasi_albert, erdos_renyi_gnm
from repro.kcore.decomposition import core_decomposition
from repro.kcore.maintenance import CoreMaintainer


def assert_consistent(maintainer: CoreMaintainer) -> None:
    fresh = core_decomposition(maintainer.graph).core_numbers
    assert maintainer.core_numbers() == fresh


class TestSingleUpdates:
    def test_insert_promotes_level(self, triangle):
        g = Graph([(0, 1), (1, 2)])  # a path: all cn = 1
        maintainer = CoreMaintainer(g)
        promoted = maintainer.insert_edge(0, 2)
        assert promoted == {0, 1, 2}
        assert maintainer.core_number(1) == 2

    def test_delete_demotes_level(self, triangle):
        maintainer = CoreMaintainer(triangle)
        demoted = maintainer.delete_edge(0, 1)
        assert demoted == {0, 1, 2}
        assert maintainer.core_numbers() == {0: 1, 1: 1, 2: 1}

    def test_insert_between_new_vertices(self):
        maintainer = CoreMaintainer(Graph())
        maintainer.insert_edge("a", "b")
        assert maintainer.core_number("a") == 1
        assert maintainer.core_number("b") == 1

    def test_insert_no_change_far_from_core(self, two_triangles_bridge):
        maintainer = CoreMaintainer(two_triangles_bridge)
        # pendant attachment to a triangle vertex cannot change any cn
        changed = maintainer.insert_edge(0, 99)
        assert maintainer.core_number(99) == 1
        assert maintainer.core_number(0) == 2
        assert_consistent(maintainer)
        assert changed == {99}

    def test_duplicate_insert_rejected(self, triangle):
        maintainer = CoreMaintainer(triangle)
        with pytest.raises(EdgeExistsError):
            maintainer.insert_edge(0, 1)

    def test_self_loop_rejected(self, triangle):
        maintainer = CoreMaintainer(triangle)
        with pytest.raises(SelfLoopError):
            maintainer.insert_edge(1, 1)

    def test_missing_delete_rejected(self, triangle):
        maintainer = CoreMaintainer(triangle)
        with pytest.raises(EdgeNotFoundError):
            maintainer.delete_edge(0, 99)

    def test_degeneracy_tracks(self, triangle):
        maintainer = CoreMaintainer(triangle)
        assert maintainer.degeneracy == 2
        maintainer.delete_edge(0, 1)
        assert maintainer.degeneracy == 1


class TestVertexOps:
    def test_insert_vertex_with_neighbors(self, triangle):
        maintainer = CoreMaintainer(triangle)
        maintainer.insert_vertex(9, neighbors=[0, 1, 2])
        assert maintainer.core_number(9) == 3
        assert_consistent(maintainer)

    def test_insert_isolated_vertex(self, triangle):
        maintainer = CoreMaintainer(triangle)
        maintainer.insert_vertex(9)
        assert maintainer.core_number(9) == 0
        assert_consistent(maintainer)

    def test_delete_vertex(self, two_triangles_bridge):
        maintainer = CoreMaintainer(two_triangles_bridge)
        maintainer.delete_vertex(0)
        assert not maintainer.graph.has_vertex(0)
        assert_consistent(maintainer)


class TestRandomizedStreams:
    @pytest.mark.parametrize("seed", range(10))
    def test_against_recomputation(self, seed):
        rng = random.Random(seed)
        n = rng.randint(6, 24)
        m = rng.randint(n, min(70, n * (n - 1) // 2))
        g = erdos_renyi_gnm(n, m, seed=seed)
        maintainer = CoreMaintainer(g)
        edges = list(g.edges())
        for _ in range(50):
            if edges and rng.random() < 0.5:
                u, v = edges.pop(rng.randrange(len(edges)))
                maintainer.delete_edge(u, v)
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v or maintainer.graph.has_edge(u, v):
                    continue
                maintainer.insert_edge(u, v)
                edges.append((u, v))
            assert_consistent(maintainer)

    def test_powerlaw_stream(self):
        g = barabasi_albert(60, 3, seed=2)
        maintainer = CoreMaintainer(g)
        rng = random.Random(2)
        edges = list(g.edges())
        for _ in range(40):
            u, v = edges.pop(rng.randrange(len(edges)))
            maintainer.delete_edge(u, v)
            assert_consistent(maintainer)

    def test_changed_sets_are_exact(self):
        rng = random.Random(7)
        g = erdos_renyi_gnm(15, 40, seed=7)
        maintainer = CoreMaintainer(g)
        before = maintainer.core_numbers()
        edges = list(g.edges())
        u, v = edges[rng.randrange(len(edges))]
        changed = maintainer.delete_edge(u, v)
        after = maintainer.core_numbers()
        assert changed == {w for w in before if before[w] != after[w]}
