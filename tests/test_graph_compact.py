"""Unit tests for the CSR snapshot."""

import pytest

from repro.errors import VertexNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.compact import CompactAdjacency
from repro.graph.generators import erdos_renyi_gnm


class TestLayout:
    def test_sizes(self, two_triangles_bridge):
        snap = CompactAdjacency(two_triangles_bridge)
        assert snap.num_vertices == 6
        assert snap.num_edges == 7
        assert len(snap.indices) == 14  # both directions

    def test_round_trip_neighbors(self, figure1_like_graph):
        g = figure1_like_graph
        snap = CompactAdjacency(g)
        for v in g.vertices():
            i = snap.index_of(v)
            got = {snap.labels[j] for j in snap.neighbor_slice(i)}
            assert got == g.neighbors(v)

    def test_degrees_match(self, figure1_like_graph):
        g = figure1_like_graph
        snap = CompactAdjacency(g)
        for v in g.vertices():
            assert snap.degree(snap.index_of(v)) == g.degree(v)
        assert snap.degrees() == [
            g.degree(snap.labels[i]) for i in range(snap.num_vertices)
        ]

    def test_index_of_unknown_raises(self, triangle):
        snap = CompactAdjacency(triangle)
        with pytest.raises(VertexNotFoundError):
            snap.index_of(42)

    def test_iter_neighbors_matches_slice(self, triangle_with_tail):
        snap = CompactAdjacency(triangle_with_tail)
        for i in range(snap.num_vertices):
            assert list(snap.iter_neighbors(i)) == list(snap.neighbor_slice(i))

    def test_empty_graph(self):
        snap = CompactAdjacency(Graph())
        assert snap.num_vertices == 0
        assert snap.num_edges == 0


class TestRankPrefix:
    def test_sorted_prefixes(self):
        g = erdos_renyi_gnm(40, 120, seed=5)
        snap = CompactAdjacency(g)
        rank = [i % 5 for i in range(snap.num_vertices)]
        snap.sort_neighbors_by_rank_desc(rank)
        for i in range(snap.num_vertices):
            ranks = [rank[j] for j in snap.neighbor_slice(i)]
            assert ranks == sorted(ranks, reverse=True)

    def test_prefix_length_counts_threshold(self):
        g = erdos_renyi_gnm(40, 120, seed=6)
        snap = CompactAdjacency(g)
        rank = [(i * 7) % 11 for i in range(snap.num_vertices)]
        snap.sort_neighbors_by_rank_desc(rank)
        for i in range(snap.num_vertices):
            for k in range(0, 12):
                expected = sum(1 for j in snap.neighbor_slice(i) if rank[j] >= k)
                assert snap.rank_prefix_length(i, k, rank) == expected

    def test_prefix_length_degenerate_cases(self, triangle):
        snap = CompactAdjacency(triangle)
        rank = [1, 1, 1]
        snap.sort_neighbors_by_rank_desc(rank)
        i = snap.index_of(0)
        assert snap.rank_prefix_length(i, 0, rank) == 2
        assert snap.rank_prefix_length(i, 2, rank) == 0
