"""Trigger / near-miss fixtures for every lint rule KP001-KP012.

Each rule gets at least one snippet that must fire (with the right code)
and one nearby snippet that must stay silent, so the heuristics cannot
drift in either direction unnoticed.  KP001-KP007 are per-file rules
checked via :func:`lint_source`; KP008-KP012 are whole-program rules, so
their fixtures are small synthetic packages written to ``tmp_path`` and
run through :func:`repro.devtools.analysis.analyze_files`.  The repo's
own ``src`` tree must lint clean — that is the acceptance gate CI runs.
"""

from __future__ import annotations

import io
import os

import pytest

from repro.devtools.analysis import analyze_files
from repro.devtools.lint import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    run,
)
from repro.devtools.violations import PARSE_ERROR_CODE, RULE_CODES, Violation

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def codes(source: str, path: str = "pkg/module.py") -> list[str]:
    return [v.code for v in lint_source(source, path=path)]


def analysis_codes(tmp_path, files: dict[str, str]) -> list[str]:
    """Write a synthetic package to ``tmp_path`` and run KP008-KP012."""
    paths = []
    for relative, source in files.items():
        target = tmp_path / relative
        target.parent.mkdir(parents=True, exist_ok=True)
        package_dir = target.parent
        while package_dir != tmp_path:
            init = package_dir / "__init__.py"
            if not init.exists():
                init.write_text("")
            package_dir = package_dir.parent
        target.write_text(source)
        paths.append(str(target))
    return [v.code for v in analyze_files(sorted(paths))]


# ----------------------------------------------------------------------
# KP001 — raw fraction arithmetic on degree-like values
# ----------------------------------------------------------------------
class TestKP001:
    def test_raw_division_on_degree_triggers(self):
        assert codes("frac = inside / graph.degree(v)\n") == ["KP001"]

    def test_ceil_of_p_times_degree_triggers(self):
        src = "from math import ceil\nt = ceil(p * degree)\n"
        assert codes(src) == ["KP001"]

    def test_division_of_unrelated_names_is_clean(self):
        assert codes("ratio = hits / total\n") == []

    def test_pvalue_module_is_exempt(self):
        source = "value = numerator / denominator\n"
        assert codes(source, path="src/repro/core/pvalue.py") == []
        assert codes(source) == ["KP001"]


# ----------------------------------------------------------------------
# KP002 — exact float equality on p-values
# ----------------------------------------------------------------------
class TestKP002:
    def test_equality_on_p_triggers(self):
        assert codes("flag = pn == previous\n") == ["KP002"]

    def test_inequality_on_fraction_triggers(self):
        assert codes("if frac != level:\n    pass\n") == ["KP002"]

    def test_ordering_comparison_is_clean(self):
        assert codes("if pn <= previous:\n    pass\n") == []

    def test_equality_on_non_p_names_is_clean(self):
        assert codes("done = count == total\n") == []


# ----------------------------------------------------------------------
# KP003 — exported functions must validate or forward p/k
# ----------------------------------------------------------------------
class TestKP003:
    def test_unvalidated_public_p_triggers(self):
        src = (
            '__all__ = ["shrink"]\n'
            "def shrink(graph, k, p):\n"
            "    return [v for v in graph if len(graph[v]) >= k]\n"
        )
        assert "KP003" in codes(src)

    def test_validator_call_is_clean(self):
        src = (
            '__all__ = ["shrink"]\n'
            "from repro.core.pvalue import check_p\n"
            "def shrink(graph, k, p):\n"
            "    check_p(p)\n"
            "    return graph\n"
        )
        assert codes(src) == []

    def test_forwarding_is_clean(self):
        src = (
            '__all__ = ["shrink"]\n'
            "def shrink(graph, k, p):\n"
            "    return _inner(graph, k, p)\n"
        )
        assert codes(src) == []

    def test_unexported_helper_is_not_checked(self):
        src = (
            "__all__ = []\n"
            "def _helper(graph, k, p):\n"
            "    return graph\n"
        )
        assert codes(src) == []


# ----------------------------------------------------------------------
# KP004 — CompactAdjacency snapshot mutation outside graph/compact.py
# ----------------------------------------------------------------------
class TestKP004:
    def test_attribute_assignment_triggers(self):
        assert codes("snapshot.indptr[0] = 1\n") == ["KP004"]

    def test_mutator_method_call_triggers(self):
        assert codes("snapshot.indices.append(3)\n") == ["KP004"]

    def test_compact_module_is_exempt(self):
        source = "self.indices.append(3)\n"
        assert codes(source, path="src/repro/graph/compact.py") == []
        assert codes(source) == ["KP004"]

    def test_other_attributes_are_clean(self):
        assert codes("snapshot.cache = {}\nsnapshot.rows.append(1)\n") == []


# ----------------------------------------------------------------------
# KP005 — __all__ drift
# ----------------------------------------------------------------------
class TestKP005:
    def test_unexported_public_def_triggers(self):
        src = '__all__ = ["f"]\ndef f():\n    pass\ndef g():\n    pass\n'
        assert codes(src) == ["KP005"]

    def test_exported_but_undefined_name_triggers(self):
        assert codes('__all__ = ["ghost"]\n') == ["KP005"]

    def test_private_def_and_assignments_are_clean(self):
        src = (
            '__all__ = ["f"]\n'
            "LIMIT = 10\n"
            "def f():\n    pass\n"
            "def _helper():\n    pass\n"
        )
        assert codes(src) == []

    def test_module_without_dunder_all_is_skipped(self):
        assert codes("def anything():\n    pass\n") == []


# ----------------------------------------------------------------------
# KP006 — per-iteration allocation in the peeling hot loops
# ----------------------------------------------------------------------
class TestKP006:
    HOT_PATH = "src/repro/kcore/compute.py"

    def test_set_constructor_in_while_loop_triggers(self):
        src = "while queue:\n    batch = set()\n"
        assert codes(src, path=self.HOT_PATH) == ["KP006"]

    def test_comprehension_in_while_loop_triggers(self):
        src = "while queue:\n    alive = [v for v in queue]\n"
        assert codes(src, path=self.HOT_PATH) == ["KP006"]

    def test_allocation_before_the_loop_is_clean(self):
        src = "batch = set()\nwhile queue:\n    batch.add(queue.pop())\n"
        assert codes(src, path=self.HOT_PATH) == []

    def test_non_hot_modules_are_not_checked(self):
        src = "while queue:\n    batch = set()\n"
        assert codes(src, path="src/repro/analysis/report.py") == []

    def test_flat_engine_module_is_hot(self):
        src = "while remaining:\n    dirty = []\n"
        assert codes(src, path="src/repro/core/peel_flat.py") == ["KP006"]


# ----------------------------------------------------------------------
# KP007 — per-iteration metric recording in the peeling hot loops
# ----------------------------------------------------------------------
class TestKP007:
    HOT_PATH = "src/repro/core/decomposition.py"

    def test_unguarded_metric_call_in_while_loop_triggers(self):
        src = "while heap:\n    obs.inc('decomp.peels')\n"
        assert codes(src, path=self.HOT_PATH) == ["KP007"]

    def test_unguarded_observe_in_for_loop_triggers(self):
        src = "for v in members:\n    collector.observe('x', deg)\n"
        assert codes(src, path=self.HOT_PATH) == ["KP007"]

    def test_collector_lookup_in_loop_triggers_even_if_guarded(self):
        src = (
            "while heap:\n"
            "    obs = get_collector()\n"
            "    if obs is not None:\n"
            "        obs.inc('decomp.peels')\n"
        )
        assert codes(src, path=self.HOT_PATH) == ["KP007"]

    def test_maybe_span_in_loop_triggers(self):
        src = "for k in ks:\n    with maybe_span('peel'):\n        work()\n"
        assert codes(src, path=self.HOT_PATH) == ["KP007"]

    def test_guarded_metric_call_is_clean(self):
        src = (
            "while heap:\n"
            "    if obs is not None:\n"
            "        obs.inc('decomp.peels')\n"
        )
        assert codes(src, path=self.HOT_PATH) == []

    def test_post_loop_flush_is_clean(self):
        src = (
            "rekeys = 0\n"
            "while heap:\n"
            "    rekeys += 1\n"
            "obs = get_collector()\n"
            "if obs is not None:\n"
            "    obs.add('decomp.rekeys', rekeys)\n"
        )
        assert codes(src, path=self.HOT_PATH) == []

    def test_set_add_is_not_mistaken_for_a_metric(self):
        src = "while queue:\n    alive.add(queue.pop())\n"
        assert codes(src, path=self.HOT_PATH) == []

    def test_unguarded_trace_record_in_loop_triggers(self):
        src = "for k in ks:\n    tracer.record('trace.peel', a, b)\n"
        assert codes(src, path=self.HOT_PATH) == ["KP007"]

    def test_tracer_lookup_in_loop_triggers_even_if_guarded(self):
        src = (
            "for k in ks:\n"
            "    tracer = get_tracer()\n"
            "    if tracer is not None:\n"
            "        tracer.record('trace.peel', a, b)\n"
        )
        assert codes(src, path=self.HOT_PATH) == ["KP007"]

    def test_maybe_trace_span_in_loop_triggers(self):
        src = (
            "for k in ks:\n"
            "    with maybe_trace_span('trace.peel'):\n"
            "        work()\n"
        )
        assert codes(src, path=self.HOT_PATH) == ["KP007"]

    def test_guarded_trace_record_is_clean(self):
        src = (
            "tracer = get_tracer()\n"
            "while heap:\n"
            "    if tracer is not None:\n"
            "        tracer.record('trace.peel', a, b)\n"
        )
        assert codes(src, path=self.HOT_PATH) == []

    def test_post_loop_trace_record_is_clean(self):
        """The peel-engine shape: hoisted lookup, one record after the loop."""
        src = (
            "tracer = get_tracer()\n"
            "start = now()\n"
            "while heap:\n"
            "    work()\n"
            "if tracer is not None:\n"
            "    tracer.record('trace.peel', start, now())\n"
        )
        assert codes(src, path=self.HOT_PATH) == []

    def test_non_collector_event_call_is_not_flagged(self):
        src = "for h in handlers:\n    bus.event('tick')\n"
        assert codes(src, path=self.HOT_PATH) == []

    def test_non_hot_modules_are_not_checked(self):
        src = "while heap:\n    obs.inc('x')\n"
        assert codes(src, path="src/repro/core/maintenance.py") == []

    def test_flat_engine_module_is_hot(self):
        src = "while remaining:\n    obs.inc('decomp.flat.moves')\n"
        assert codes(src, path="src/repro/core/peel_flat.py") == ["KP007"]


# ----------------------------------------------------------------------
# KP008 — lock discipline (whole-program)
# ----------------------------------------------------------------------
_RWLOCK_STUB = (
    "class RWLock:\n"
    "    def read_locked(self):\n"
    "        return self\n"
    "    def write_locked(self):\n"
    "        return self\n"
    "    def __enter__(self):\n"
    "        return self\n"
    "    def __exit__(self, *exc):\n"
    "        return None\n"
)


class TestKP008:
    def test_unlocked_mutation_in_lock_owner_triggers(self, tmp_path):
        server = (
            _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def grow(self, v):\n"
            "        self._index.vertices.append(v)\n"
        )
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == ["KP008"]

    def test_mutation_under_write_lock_is_clean(self, tmp_path):
        server = (
            _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def grow(self, v):\n"
            "        with self._lock.write_locked():\n"
            "            self._index.vertices.append(v)\n"
        )
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == []

    def test_mutating_call_needs_write_lock_even_under_read_lock(self, tmp_path):
        server = (
            _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def grow(self, v):\n"
            "        with self._lock.read_locked():\n"
            "            self._mutate(v)\n"
            "    def _mutate(self, v):\n"
            "        with self._lock.write_locked():\n"
            "            self._index.vertices.append(v)\n"
        )
        # The call path grow() -> _mutate() holds only the read lock at
        # the call site; _mutate() itself re-locks, so only the call
        # site is flagged.
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == ["KP008"]

    def test_version_read_and_cache_fill_outside_read_lock_triggers(self, tmp_path):
        server = (
            _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def lookup(self, k):\n"
            "        tag = self.index.version(k)\n"
            "        self._cache.put((k, tag), 1)\n"
        )
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == ["KP008"]

    def test_version_read_and_cache_fill_in_one_scope_is_clean(self, tmp_path):
        server = (
            _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def lookup(self, k):\n"
            "        with self._lock.read_locked():\n"
            "            tag = self.index.version(k)\n"
            "            self._cache.put((k, tag), 1)\n"
        )
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == []

    def test_version_read_and_cache_fill_in_split_scopes_triggers(self, tmp_path):
        server = (
            _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def lookup(self, k):\n"
            "        with self._lock.read_locked():\n"
            "            tag = self.index.version(k)\n"
            "        with self._lock.read_locked():\n"
            "            self._cache.put((k, tag), 1)\n"
        )
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == ["KP008"]

    def test_class_without_rwlock_is_not_checked(self, tmp_path):
        module = (
            "class Builder:\n"
            "    def grow(self, v):\n"
            "        self._index.vertices.append(v)\n"
        )
        assert analysis_codes(tmp_path, {"pkg/builder.py": module}) == []


# ----------------------------------------------------------------------
# KP009 — version-bump pairing in core/maintenance.py (whole-program)
# ----------------------------------------------------------------------
class TestKP009:
    def test_mutation_without_bump_triggers(self, tmp_path):
        module = (
            "class Maintainer:\n"
            "    def splice(self, array, v):\n"
            "        array.vertices.append(v)\n"
        )
        files = {"pkg/core/maintenance.py": module}
        assert analysis_codes(tmp_path, files) == ["KP009"]

    def test_mutation_with_bump_is_clean(self, tmp_path):
        module = (
            "class Maintainer:\n"
            "    def splice(self, array, v):\n"
            "        array.vertices.append(v)\n"
            "        self.index.bump_version(1)\n"
        )
        files = {"pkg/core/maintenance.py": module}
        assert analysis_codes(tmp_path, files) == []

    def test_scratch_buffer_mutation_is_not_index_state(self, tmp_path):
        module = (
            "class Maintainer:\n"
            "    def rebuild(self, result, value):\n"
            "        result.p_numbers.append(value)\n"
        )
        files = {"pkg/core/maintenance.py": module}
        assert analysis_codes(tmp_path, files) == []

    def test_other_modules_are_not_checked(self, tmp_path):
        module = (
            "class Maintainer:\n"
            "    def splice(self, array, v):\n"
            "        array.vertices.append(v)\n"
        )
        assert analysis_codes(tmp_path, {"pkg/core/other.py": module}) == []


# ----------------------------------------------------------------------
# KP010 — durable-write protocol (whole-program)
# ----------------------------------------------------------------------
class TestKP010:
    def test_mutation_before_journal_append_triggers(self, tmp_path):
        module = (
            "class Store:\n"
            "    def apply(self, record, v):\n"
            "        self.arrays.vertices.append(v)\n"
            "        self._journal.append(record)\n"
        )
        files = {"pkg/service/store.py": module}
        assert analysis_codes(tmp_path, files) == ["KP010"]

    def test_journal_append_before_mutation_is_clean(self, tmp_path):
        module = (
            "class Store:\n"
            "    def apply(self, record, v):\n"
            "        self._journal.append(record)\n"
            "        self.arrays.vertices.append(v)\n"
        )
        files = {"pkg/service/store.py": module}
        assert analysis_codes(tmp_path, files) == []

    def test_raw_open_for_write_on_persisted_path_triggers(self, tmp_path):
        module = (
            "def save(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(payload)\n"
        )
        files = {"pkg/service/snapshot.py": module}
        assert analysis_codes(tmp_path, files) == ["KP010"]

    def test_read_open_and_unscoped_modules_are_clean(self, tmp_path):
        reader = (
            "def load(path):\n"
            "    with open(path, 'r') as handle:\n"
            "        return handle.read()\n"
        )
        writer = (
            "def export(path, payload):\n"
            "    with open(path, 'w') as handle:\n"
            "        handle.write(payload)\n"
        )
        files = {
            "pkg/service/snapshot.py": reader,
            # Same raw write, but not on a persisted-path module.
            "pkg/reports.py": writer,
        }
        assert analysis_codes(tmp_path, files) == []


# ----------------------------------------------------------------------
# KP011 — process-boundary safety (whole-program)
# ----------------------------------------------------------------------
class TestKP011:
    def test_lambda_shipped_to_pool_triggers(self, tmp_path):
        module = (
            "from multiprocessing import Pool\n"
            "def drive(items):\n"
            "    with Pool(2) as pool:\n"
            "        return list(pool.imap_unordered(lambda item: item, items))\n"
        )
        assert analysis_codes(tmp_path, {"pkg/driver.py": module}) == ["KP011"]

    def test_closure_shipped_to_pool_triggers(self, tmp_path):
        module = (
            "from multiprocessing import Pool\n"
            "def drive(items):\n"
            "    def helper(item):\n"
            "        return item\n"
            "    with Pool(2) as pool:\n"
            "        return pool.map(helper, items)\n"
        )
        assert analysis_codes(tmp_path, {"pkg/driver.py": module}) == ["KP011"]

    def test_lock_in_initargs_triggers(self, tmp_path):
        module = (
            "from multiprocessing import Pool\n"
            "def drive(snapshot, lock):\n"
            "    with Pool(2, initializer=_setup, initargs=(snapshot, lock)) as pool:\n"
            "        return pool\n"
            "def _setup(snapshot, lock):\n"
            "    return None\n"
        )
        assert analysis_codes(tmp_path, {"pkg/driver.py": module}) == ["KP011"]

    def test_module_level_task_and_plain_data_are_clean(self, tmp_path):
        module = (
            "from multiprocessing import Pool\n"
            "def _task(item):\n"
            "    return item\n"
            "def drive(items, snapshot):\n"
            "    with Pool(2, initializer=_setup, initargs=(snapshot,)) as pool:\n"
            "        return list(pool.imap_unordered(_task, items))\n"
            "def _setup(snapshot):\n"
            "    return None\n"
        )
        assert analysis_codes(tmp_path, {"pkg/driver.py": module}) == []

    def test_chunked_scheduler_shape_is_clean(self, tmp_path):
        """The parallel driver's work-stealing shape: module-level chunk
        worker, plain ``list[list[int]]`` payloads, picklable initargs."""
        module = (
            "from multiprocessing import Pool\n"
            "def _peel_chunk(chunk):\n"
            "    return [(k, [k]) for k in chunk]\n"
            "def drive(chunks, snapshot, engine):\n"
            "    with Pool(2, initializer=_setup, initargs=(snapshot, engine)) as pool:\n"
            "        out = []\n"
            "        for peeled in pool.imap_unordered(_peel_chunk, chunks):\n"
            "            out.extend(peeled)\n"
            "    return out\n"
            "def _setup(snapshot, engine):\n"
            "    return None\n"
        )
        assert analysis_codes(tmp_path, {"pkg/driver.py": module}) == []


# ----------------------------------------------------------------------
# KP012 — no blocking I/O under a shared lock scope (whole-program)
# ----------------------------------------------------------------------
class TestKP012:
    def test_fsync_under_write_lock_triggers(self, tmp_path):
        server = (
            "import os\n"
            + _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def flush(self, fd):\n"
            "        with self._lock.write_locked():\n"
            "            os.fsync(fd)\n"
        )
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == ["KP012"]

    def test_blocking_helper_inherits_the_lock_scope(self, tmp_path):
        server = (
            "import os\n"
            + _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def flush(self, fd):\n"
            "        with self._lock.write_locked():\n"
            "            self._sync(fd)\n"
            "    def _sync(self, fd):\n"
            "        os.fsync(fd)\n"
        )
        # Both the locked call site and the helper's own fsync (whose
        # every analyzed caller holds the lock) are reported.
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == ["KP012", "KP012"]

    def test_fsync_outside_the_lock_is_clean(self, tmp_path):
        server = (
            "import os\n"
            + _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def flush(self, fd):\n"
            "        os.fsync(fd)\n"
        )
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == []

    def test_helper_also_called_unlocked_is_clean(self, tmp_path):
        server = (
            "import os\n"
            + _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def flush(self, fd):\n"
            "        with self._lock.write_locked():\n"
            "            self._sync(fd)  # noqa: KP012 flush stays exclusive\n"
            "    def startup(self, fd):\n"
            "        self._sync(fd)\n"
            "    def _sync(self, fd):\n"
            "        os.fsync(fd)\n"
        )
        # The entry context is the intersection over call paths: one
        # unlocked caller means _sync() cannot assume the lock is held.
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == []

    def test_noqa_suppresses_analysis_findings(self, tmp_path):
        server = (
            "import os\n"
            + _RWLOCK_STUB
            + "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = RWLock()\n"
            "    def flush(self, fd):\n"
            "        with self._lock.write_locked():\n"
            "            os.fsync(fd)  # noqa: KP012 checkpoint by design\n"
        )
        assert analysis_codes(tmp_path, {"pkg/srv.py": server}) == []


# ----------------------------------------------------------------------
# suppression, parse errors, driver behaviour
# ----------------------------------------------------------------------
class TestSuppression:
    def test_matching_noqa_suppresses(self):
        assert codes("frac = a / degree  # noqa: KP001 hot loop\n") == []

    def test_wrong_code_does_not_suppress(self):
        assert codes("frac = a / degree  # noqa: KP002\n") == ["KP001"]

    def test_bare_noqa_suppresses_everything(self):
        assert codes("frac = pn == a / degree  # noqa\n") == []

    def test_comma_separated_codes(self):
        assert codes("frac = pn == a / degree  # noqa: KP001,KP002\n") == []


def test_syntax_error_reports_kp000():
    violations = lint_source("def broken(:\n", path="bad.py")
    assert [v.code for v in violations] == [PARSE_ERROR_CODE]


def test_violation_render_format():
    v = Violation(path="a/b.py", line=3, col=4, code="KP001", message="msg")
    assert v.render() == "a/b.py:3:4: KP001 msg"


def test_rule_catalogue_covers_all_codes():
    assert set(RULE_CODES) == {f"KP{i:03d}" for i in range(0, 13)}


def test_iter_python_files_rejects_missing_path(tmp_path):
    with pytest.raises(FileNotFoundError):
        iter_python_files([str(tmp_path / "nope")])


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    (tmp_path / "bad.py").write_text("frac = a / degree\n")
    violations = lint_paths([str(tmp_path)])
    assert [v.code for v in violations] == ["KP001"]
    assert violations[0].path.endswith("bad.py")
    assert lint_file(str(tmp_path / "ok.py")) == []


def test_run_exit_codes(tmp_path):
    clean, dirty = tmp_path / "clean.py", tmp_path / "dirty.py"
    clean.write_text("x = 1\n")
    dirty.write_text("frac = a / degree\n")

    out = io.StringIO()
    assert run([str(clean)], out=out) == 0
    assert "clean: 1 file(s) checked" in out.getvalue()

    out = io.StringIO()
    assert run([str(dirty)], out=out) == 1
    assert "KP001" in out.getvalue()

    out = io.StringIO()
    assert run([str(tmp_path / "missing.py")], out=out) == 2


def test_repo_source_tree_is_clean():
    """The acceptance gate: ``python -m repro lint src`` exits 0."""
    out = io.StringIO()
    assert run([REPO_SRC], out=out) == 0, out.getvalue()


def test_cli_lint_subcommand(tmp_path):
    from repro.cli import main

    dirty = tmp_path / "dirty.py"
    dirty.write_text("frac = a / degree\n")
    assert main(["lint", REPO_SRC]) == 0
    assert main(["lint", str(dirty)]) == 1
    assert main(["lint", "--explain"]) == 0
