"""Unit tests for the shared quantile math and the reservoir sketch."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.obs.quantiles import (
    DEFAULT_CAPACITY,
    LATENCY_METHOD,
    ReservoirSketch,
    quantile,
)


class TestQuantileFunction:
    def test_median_interpolates_between_order_statistics(self):
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_endpoints_are_exact(self):
        values = [3.0, 7.0, 9.0]
        assert quantile(values, 0.0) == 3.0
        assert quantile(values, 1.0) == 9.0

    def test_empty_and_singleton(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([42.0], 0.99) == 42.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ParameterError, match="quantile"):
            quantile([1.0], 1.5)
        with pytest.raises(ParameterError, match="quantile"):
            quantile([1.0], -0.1)

    def test_p99_is_not_max_on_a_serving_sized_sample(self):
        """The old ``values[int(q*len)]`` truncation pinned p99 to the last
        order statistic on the ~488-sample serve-bench runs."""
        values = [float(v) for v in range(488)]
        p99 = quantile(values, 0.99)
        assert p99 < values[-1]
        assert abs(p99 - 0.99 * 487) < 1e-9

    def test_matches_linear_definition(self):
        # numpy.percentile(values, 25, method="linear") == 1.75
        assert quantile([1.0, 2.0, 3.0, 4.0], 0.25) == 1.75


class TestReservoirSketch:
    def test_exact_below_capacity(self):
        sketch = ReservoirSketch(capacity=10)
        sketch.extend([5.0, 1.0, 3.0, 2.0, 4.0])
        assert sketch.exact
        assert sketch.count == 5
        assert sketch.total == 15.0
        assert sketch.mean == 3.0
        assert sketch.quantile(0.5) == 3.0

    def test_extremes_stay_exact_beyond_capacity(self):
        sketch = ReservoirSketch(capacity=8, seed=1)
        sketch.extend(float(v) for v in range(1000))
        assert not sketch.exact
        assert len(sketch) == 8
        assert sketch.count == 1000
        assert sketch.minimum == 0.0
        assert sketch.maximum == 999.0
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == 999.0

    def test_deterministic_for_fixed_seed(self):
        def build():
            sketch = ReservoirSketch(capacity=16, seed=7)
            sketch.extend(float(v % 97) for v in range(500))
            return sketch

        assert build().summary() == build().summary()

    def test_summary_schema(self):
        sketch = ReservoirSketch()
        sketch.extend([1.0, 2.0, 3.0])
        summary = sketch.summary()
        assert summary["method"] == LATENCY_METHOD
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["p50"] == 2.0

    def test_empty_summary_is_all_zero(self):
        summary = ReservoirSketch().summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0
        assert summary["max"] == 0.0
        assert summary["min"] == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ParameterError, match="capacity"):
            ReservoirSketch(capacity=0)
        with pytest.raises(ParameterError, match="quantile"):
            ReservoirSketch().quantile(2.0)

    def test_default_capacity_covers_committed_workloads(self):
        assert DEFAULT_CAPACITY >= 4096
