"""Unit tests for the random-graph generators."""

import pytest

from repro.errors import ParameterError
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    configuration_model,
    cycle_graph,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    heterogeneous_planted_partition,
    planted_partition,
    powerlaw_cluster_graph,
    powerlaw_degree_sequence,
    star_graph,
    watts_strogatz,
)
from repro.graph.metrics import average_degree, global_clustering_coefficient
from repro.graph.traversal import is_connected


class TestDeterministicBlocks:
    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.num_edges == 7
        assert all(g.degree(v) == 2 for v in g.vertices())
        with pytest.raises(ParameterError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        with pytest.raises(ParameterError):
            star_graph(0)


class TestErdosRenyi:
    def test_gnm_exact_counts(self):
        g = erdos_renyi_gnm(50, 123, seed=1)
        assert g.num_vertices == 50
        assert g.num_edges == 123

    def test_gnm_rejects_impossible_m(self):
        with pytest.raises(ParameterError):
            erdos_renyi_gnm(4, 7)

    def test_gnm_deterministic(self):
        assert erdos_renyi_gnm(30, 60, seed=9) == erdos_renyi_gnm(30, 60, seed=9)

    def test_gnp_edge_count_near_expectation(self):
        g = erdos_renyi_gnp(200, 0.1, seed=2)
        expected = 0.1 * 200 * 199 / 2
        assert abs(g.num_edges - expected) < 0.2 * expected

    def test_gnp_extremes(self):
        assert erdos_renyi_gnp(20, 0.0, seed=1).num_edges == 0
        assert erdos_renyi_gnp(10, 1.0, seed=1).num_edges == 45
        with pytest.raises(ParameterError):
            erdos_renyi_gnp(10, 1.5)

    def test_gnp_no_self_loops_or_duplicates(self):
        g = erdos_renyi_gnp(80, 0.15, seed=3)
        seen = set()
        for u, v in g.edges():
            assert u != v
            assert frozenset((u, v)) not in seen
            seen.add(frozenset((u, v)))


class TestPreferentialAttachment:
    def test_ba_sizes(self):
        g = barabasi_albert(100, 3, seed=4)
        assert g.num_vertices == 100
        # star start: 3 edges; 96 joiners × 3 edges
        assert g.num_edges == 3 + 96 * 3
        # every vertex added after the seed star attaches to 3 targets
        assert min(g.degree(v) for v in range(4, 100)) >= 3

    def test_ba_connected(self):
        assert is_connected(barabasi_albert(60, 2, seed=5))

    def test_ba_parameter_validation(self):
        with pytest.raises(ParameterError):
            barabasi_albert(3, 3)
        with pytest.raises(ParameterError):
            barabasi_albert(10, 0)

    def test_holme_kim_boosts_clustering(self):
        plain = barabasi_albert(300, 4, seed=6)
        clustered = powerlaw_cluster_graph(300, 4, 0.8, seed=6)
        assert global_clustering_coefficient(
            clustered
        ) > global_clustering_coefficient(plain)

    def test_holme_kim_validation(self):
        with pytest.raises(ParameterError):
            powerlaw_cluster_graph(10, 3, 1.5)


class TestConfigurationModel:
    def test_powerlaw_sequence_bounds_and_parity(self):
        degrees = powerlaw_degree_sequence(500, 2.1, 2, 50, seed=7)
        assert len(degrees) == 500
        assert sum(degrees) % 2 == 0
        assert all(2 <= d <= 51 for d in degrees)  # +1 slack for parity bump

    def test_powerlaw_sequence_validation(self):
        with pytest.raises(ParameterError):
            powerlaw_degree_sequence(10, 2.0, 0, 5)
        with pytest.raises(ParameterError):
            powerlaw_degree_sequence(10, 2.0, 2, 20)  # max >= n

    def test_configuration_model_respects_sequence_loosely(self):
        degrees = powerlaw_degree_sequence(400, 2.2, 2, 40, seed=8)
        g = configuration_model(degrees, seed=8)
        # erased variant: realized degree never exceeds requested
        for v in g.vertices():
            assert g.degree(v) <= degrees[v]
        realized = sum(g.degree(v) for v in g.vertices())
        assert realized >= 0.9 * sum(degrees)

    def test_configuration_model_validation(self):
        with pytest.raises(ParameterError):
            configuration_model([1, 1, 1])  # odd sum
        with pytest.raises(ParameterError):
            configuration_model([2, -2])


class TestCommunities:
    def test_planted_partition_structure(self):
        g = planted_partition(4, 25, 0.5, 0.01, seed=9)
        assert g.num_vertices == 100
        intra = sum(
            1 for u, v in g.edges() if u // 25 == v // 25
        )
        inter = g.num_edges - intra
        assert intra > 5 * inter

    def test_heterogeneous_sizes(self):
        sizes = (30, 20, 10)
        g = heterogeneous_planted_partition(sizes, 0.6, 0.0, seed=10)
        assert g.num_vertices == 60
        # members of the big block have higher average degree
        big = sum(g.degree(v) for v in range(30)) / 30
        small = sum(g.degree(v) for v in range(50, 60)) / 10
        assert big > small

    def test_partition_validation(self):
        with pytest.raises(ParameterError):
            planted_partition(2, 5, 1.2, 0.0)
        with pytest.raises(ParameterError):
            heterogeneous_planted_partition((0, 5), 0.5, 0.0)


class TestWattsStrogatz:
    def test_degree_preserved_at_beta_zero(self):
        g = watts_strogatz(30, 4, 0.0, seed=11)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_edge_count_invariant_under_rewiring(self):
        g = watts_strogatz(40, 6, 0.5, seed=12)
        assert g.num_edges == 40 * 3

    def test_validation(self):
        with pytest.raises(ParameterError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(ParameterError):
            watts_strogatz(4, 4, 0.1)  # n <= k
        with pytest.raises(ParameterError):
            watts_strogatz(10, 4, 1.5)


def test_generators_hit_target_density_regimes():
    sparse = configuration_model(
        powerlaw_degree_sequence(300, 2.3, 2, 40, seed=13), seed=13
    )
    dense = planted_partition(4, 40, 0.6, 0.01, seed=13)
    assert average_degree(sparse) < average_degree(dense)
