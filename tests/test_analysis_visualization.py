"""Tests for the Fig. 9 DOT export."""

import io

from repro.analysis.casestudy import case_study
from repro.analysis.visualization import component_to_dot, write_component_dot
from repro.graph.generators import planted_partition


def make_report():
    graph = planted_partition(2, 10, 0.75, 0.04, seed=11)
    return graph, case_study(graph, 3, 0.6)


class TestDotStructure:
    def test_valid_shape(self):
        graph, report = make_report()
        dot = component_to_dot(graph, report)
        assert dot.startswith("graph kp_case_study {")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_members_colored_by_survival(self):
        graph, report = make_report()
        dot = component_to_dot(graph, report, include_halo=False)
        survivors = sum(dot.count("#4477dd") for _ in (1,))
        trimmed = dot.count("#555555")
        assert survivors == len(report.kp_members)
        assert trimmed == len(report.trimmed)

    def test_min_fraction_vertex_highlighted(self):
        graph, report = make_report()
        dot = component_to_dot(graph, report)
        assert "peripheries=2" in dot

    def test_halo_toggle(self):
        graph, report = make_report()
        with_halo = component_to_dot(graph, report, include_halo=True)
        without = component_to_dot(graph, report, include_halo=False)
        assert with_halo.count("#cccccc") >= without.count("#cccccc")
        assert len(with_halo) >= len(without)

    def test_edges_within_component_present(self):
        graph, report = make_report()
        dot = component_to_dot(graph, report, include_halo=False)
        members = sorted(report.members)
        u, v = None, None
        for a in members:
            for b in graph.neighbors(a):
                if b in report.members:
                    u, v = a, b
                    break
            if u is not None:
                break
        assert f'"{u}" -- "{v}"' in dot or f'"{v}" -- "{u}"' in dot

    def test_labels_quoted_safely(self):
        from repro.graph.adjacency import Graph
        from repro.analysis.casestudy import case_study as study

        g = Graph()
        names = ['he"llo', "world", "x", "y"]
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                g.add_edge(a, b)
        report = study(g, 2, 0.5)
        dot = component_to_dot(g, report)
        assert '\\"' in dot  # the quote survived, escaped


class TestWriting:
    def test_write_to_stream(self):
        graph, report = make_report()
        buffer = io.StringIO()
        write_component_dot(graph, report, buffer)
        assert buffer.getvalue().startswith("graph")

    def test_write_to_path(self, tmp_path):
        graph, report = make_report()
        target = tmp_path / "case.dot"
        write_component_dot(graph, report, str(target))
        assert target.read_text().startswith("graph")
