"""Unit tests for the KP-Index and Algorithm 3 (kpCoreQuery)."""

import pytest

from repro.errors import IndexStateError, ParameterError
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_gnm
from repro.core.index import KArray, KPIndex, build_index
from repro.core.kpcore import kp_core_vertices
from repro.kcore.decomposition import core_decomposition


class TestKArray:
    def test_levels_built_from_runs(self):
        array = KArray(k=2, vertices=[1, 2, 3, 4], p_numbers=[0.5, 0.5, 0.75, 1.0])
        assert array.level_values == [0.5, 0.75, 1.0]  # noqa: KP002 exact-double oracle
        assert array.level_starts == [0, 2, 3]

    def test_unsorted_p_numbers_rejected(self):
        with pytest.raises(IndexStateError):
            KArray(k=2, vertices=[1, 2], p_numbers=[0.8, 0.5])

    def test_length_mismatch_rejected(self):
        with pytest.raises(IndexStateError):
            KArray(k=2, vertices=[1], p_numbers=[0.5, 0.6])

    def test_duplicate_vertex_rejected(self):
        with pytest.raises(IndexStateError):
            KArray(k=2, vertices=[1, 1], p_numbers=[0.5, 0.5])

    def test_query_suffix_semantics(self):
        array = KArray(k=2, vertices=[1, 2, 3, 4], p_numbers=[0.5, 0.5, 0.75, 1.0])
        assert array.query(0.5) == [1, 2, 3, 4]
        assert array.query(0.6) == [3, 4]
        assert array.query(0.75) == [3, 4]
        assert array.query(1.0) == [4]
        assert array.query(0.0) == [1, 2, 3, 4]

    def test_query_above_max_level_is_empty(self):
        array = KArray(k=2, vertices=[1], p_numbers=[0.5])
        assert array.query(0.9) == []

    def test_query_rejects_out_of_range_p(self):
        # Regression lock-in: KArray.query must validate p itself (the
        # serving cache keys answers by (k, p) — a silently-accepted bad
        # p would poison it).  ParameterError subclasses ValueError.
        array = KArray(k=2, vertices=[1, 2], p_numbers=[0.5, 1.0])
        for bad in (-0.1, 1.1, float("nan")):
            with pytest.raises(ValueError):
                array.query(bad)

    def test_p_number_lookup(self):
        array = KArray(k=2, vertices=[1, 2], p_numbers=[0.5, 0.8])
        assert array.p_number(2) == 0.8  # noqa: KP002 exact-double oracle
        assert array.p_number_or(99, 0.0) == 0.0  # noqa: KP002 exact-double oracle
        with pytest.raises(KeyError):
            array.p_number(99)

    def test_replace_segment_splices(self):
        array = KArray(
            k=2, vertices=[1, 2, 3, 4, 5], p_numbers=[0.2, 0.4, 0.5, 0.7, 0.9]
        )
        array.replace_segment(
            keep_below=0.4,
            segment_vertices=[3, 2],
            segment_p_numbers=[0.45, 0.6],
            tail_from=[4, 5],
        )
        assert array.vertices == [1, 3, 2, 4, 5]
        assert array.p_numbers == [0.2, 0.45, 0.6, 0.7, 0.9]  # noqa: KP002 exact-double oracle
        assert array.p_number(2) == 0.6  # noqa: KP002 exact-double oracle


class TestIndexQueries:
    @pytest.mark.parametrize("seed", range(5))
    def test_query_equals_direct_computation(self, seed):
        g = erdos_renyi_gnm(25, 75, seed=seed)
        index = KPIndex.build(g)
        d = core_decomposition(g).degeneracy
        for k in range(1, d + 2):
            for p in (0.0, 0.3, 0.5, 0.66, 0.8, 1.0):
                assert set(index.query(k, p)) == kp_core_vertices(g, k, p)

    def test_query_result_is_suffix_order(self):
        g = erdos_renyi_gnm(20, 60, seed=9)
        index = KPIndex.build(g)
        array = index.array(2)
        result = index.query(2, array.level_values[0])
        assert result == array.vertices

    def test_k_beyond_degeneracy(self, triangle):
        index = KPIndex.build(triangle)
        assert index.query(5, 0.1) == []

    def test_invalid_parameters(self, triangle):
        index = KPIndex.build(triangle)
        with pytest.raises(ParameterError):
            index.query(0, 0.5)
        with pytest.raises(ParameterError):
            index.query(1, 1.5)
        with pytest.raises(ParameterError):
            index.query(1, -0.1)
        with pytest.raises(ParameterError):
            index.query(1, float("nan"))

    def test_p_number_accessor(self, cascade_graph):
        index = KPIndex.build(cascade_graph)
        assert index.p_number(5, 2) == pytest.approx(2 / 3)  # noqa: KP002 exact-double oracle
        with pytest.raises(KeyError):
            index.p_number(5, 9)


class TestAnswerSlices:
    def test_query_slice_matches_query(self):
        g = erdos_renyi_gnm(25, 75, seed=3)
        index = KPIndex.build(g)
        for k in (1, 2, 3):
            for p in (0.0, 0.3, 0.5, 0.8, 1.0):
                assert list(index.query_slice(k, p)) == index.query(k, p)

    def test_slice_is_memoized_per_level(self):
        array = KArray(k=2, vertices=[1, 2, 3, 4], p_numbers=[0.5, 0.5, 0.75, 1.0])
        first = array.query_slice(0.6)
        assert first == (3, 4)
        assert array.query_slice(0.75) is first
        assert array.slice_at(array.level_index(0.7)) is first

    def test_mutation_resets_slices(self):
        array = KArray(
            k=2, vertices=[1, 2, 3, 4, 5], p_numbers=[0.2, 0.4, 0.5, 0.7, 0.9]
        )
        before = array.query_slice(0.5)
        array.replace_segment(
            keep_below=0.4,
            segment_vertices=[3, 2],
            segment_p_numbers=[0.45, 0.6],
            tail_from=[4, 5],
        )
        after = array.query_slice(0.5)
        assert after is not before
        assert after == (2, 4, 5)

    def test_above_max_level_is_empty_tuple(self):
        array = KArray(k=2, vertices=[1], p_numbers=[0.5])
        assert array.query_slice(0.9) == ()
        assert array.level_index(0.9) == len(array.level_values)

    def test_level_index_canonicalizes_float_spellings(self):
        array = KArray(k=2, vertices=[1, 2, 3], p_numbers=[0.25, 0.5, 1.0])
        # Both spellings sit in the same inter-level gap (0.25, 0.5].
        assert array.level_index(0.3) == array.level_index(0.1 + 0.2)
        # A p-number strictly between two spellings separates them.
        assert array.level_index(0.25) != array.level_index(0.3)

    def test_answer_key_pairs_version_and_level(self, triangle):
        index = KPIndex.build(triangle)
        version, level = index.answer_key(1, 0.5)
        assert version == index.version(1)
        assert level == index.level_index(1, 0.5)

    def test_answer_key_memo_invalidates_on_version_bump(self, triangle):
        index = KPIndex.build(triangle)
        first = index.answer_key(1, 0.5)
        assert index.answer_key(1, 0.5) is first  # memoized pair
        index.bump_version(1)
        second = index.answer_key(1, 0.5)
        assert second != first
        assert second[0] == index.version(1)

    def test_answer_key_for_absent_k(self, triangle):
        index = KPIndex.build(triangle)
        assert index.answer_key(99, 0.5) == (0, 0)
        assert index.query_slice(99, 0.5) == ()


class TestVersions:
    def test_fresh_index_starts_at_zero(self, triangle):
        index = KPIndex.build(triangle)
        assert index.versions() == {}
        assert index.version(1) == 0
        assert index.version(99) == 0

    def test_bump_is_monotonic_per_k(self, triangle):
        index = KPIndex.build(triangle)
        assert index.bump_version(2) == 1
        assert index.bump_version(2) == 2
        assert index.bump_version(3) == 1
        assert index.version(2) == 2
        assert index.version(3) == 1
        assert index.version(1) == 0

    def test_versions_returns_a_copy(self, triangle):
        index = KPIndex.build(triangle)
        index.bump_version(1)
        snapshot = index.versions()
        snapshot[1] = 99
        assert index.version(1) == 1

    def test_version_validates_k(self, triangle):
        index = KPIndex.build(triangle)
        with pytest.raises(ParameterError):
            index.version(0)


class TestStructure:
    def test_space_bound_lemma1(self):
        for seed in range(4):
            g = erdos_renyi_gnm(30, 100, seed=seed)
            stats = KPIndex.build(g).space_stats()
            assert stats.vertex_entries <= stats.two_m
            assert stats.p_number_entries <= stats.vertex_entries
            assert stats.within_bound

    def test_validate_passes_on_fresh_index(self):
        g = erdos_renyi_gnm(30, 100, seed=5)
        KPIndex.build(g).validate()

    def test_validate_catches_broken_nesting(self):
        g = erdos_renyi_gnm(30, 100, seed=6)
        index = KPIndex.build(g)
        top = index.degeneracy
        # corrupt: put a vertex in A_top that is not in A_(top-1)
        bogus = "not-a-member"
        index.arrays()[top].vertices.append(bogus)
        index.arrays()[top].p_numbers.append(2.0)
        index.arrays()[top]._rebuild_levels()
        with pytest.raises(IndexStateError):
            index.validate()

    def test_degeneracy_property(self, triangle):
        assert KPIndex.build(triangle).degeneracy == 2

    def test_semantic_equality_ignores_tie_order(self):
        g = erdos_renyi_gnm(20, 60, seed=7)
        a = KPIndex.build(g)
        b = KPIndex.build(g)
        # permute a same-level block of b
        array = b.arrays()[1]
        start = array.level_starts[0]
        stop = (
            array.level_starts[1]
            if len(array.level_starts) > 1
            else len(array.vertices)
        )
        block = array.vertices[start:stop]
        array.vertices[start:stop] = list(reversed(block))
        array._rebuild_levels()
        assert a.semantically_equal(b)

    def test_serialization_round_trip(self):
        g = erdos_renyi_gnm(20, 55, seed=8)
        index = KPIndex.build(g)
        again = KPIndex.from_dict(index.to_dict())
        assert index.semantically_equal(again)
        assert again.space_stats() == index.space_stats()

    def test_build_index_alias(self, triangle):
        assert build_index(triangle).semantically_equal(KPIndex.build(triangle))

    def test_empty_graph_index(self):
        index = KPIndex.build(Graph())
        assert index.degeneracy == 0
        assert index.query(1, 0.5) == []


class TestFilePersistence:
    def test_save_load_round_trip(self, tmp_path):
        from repro.graph.generators import erdos_renyi_gnm

        g = erdos_renyi_gnm(20, 55, seed=9)
        index = KPIndex.build(g)
        path = str(tmp_path / "index.json")
        index.save(path)
        restored = KPIndex.load(path)
        assert restored.semantically_equal(index)
        assert restored.space_stats() == index.space_stats()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            KPIndex.load(str(tmp_path / "nope.json"))

    def test_truncated_json_raises_typed_error(self, tmp_path):
        from repro.errors import IndexPersistenceError

        path = tmp_path / "bad.json"
        path.write_text('{"num_edges": 3')
        with pytest.raises(IndexPersistenceError) as excinfo:
            KPIndex.load(str(path))
        assert excinfo.value.path == str(path)
        assert "truncated or foreign file" in str(excinfo.value)

    def test_foreign_json_raises_typed_error(self, tmp_path):
        from repro.errors import IndexPersistenceError

        path = tmp_path / "foreign.json"
        path.write_text('{"hello": [1, 2, 3]}')
        with pytest.raises(IndexPersistenceError):
            KPIndex.load(str(path))

    def test_checksum_mismatch_detected(self, tmp_path):
        import json

        from repro.errors import IndexPersistenceError

        g = erdos_renyi_gnm(10, 20, seed=3)
        path = str(tmp_path / "index.json")
        KPIndex.build(g).save(path)
        document = json.load(open(path))
        document["payload"]["num_edges"] += 1  # silent bit-flip
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(IndexPersistenceError) as excinfo:
            KPIndex.load(path)
        assert "checksum" in str(excinfo.value)

    def test_unsupported_format_version_rejected(self, tmp_path):
        import json

        from repro.errors import IndexPersistenceError

        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format_version": 99, "payload": {}}))
        with pytest.raises(IndexPersistenceError):
            KPIndex.load(str(path))

    def test_v1_document_still_loads(self, tmp_path):
        # Pre-envelope snapshots were the bare payload; migration keeps
        # them loadable.
        import json

        g = erdos_renyi_gnm(12, 24, seed=4)
        index = KPIndex.build(g)
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(index.to_payload()))
        restored = KPIndex.load(str(path))
        assert restored.semantically_equal(index)

    def test_fingerprint_round_trips(self, tmp_path):
        from repro.graph.fingerprint import graph_fingerprint

        g = erdos_renyi_gnm(10, 18, seed=5)
        index = KPIndex.build(g)
        path = str(tmp_path / "index.json")
        index.save(path, fingerprint=graph_fingerprint(g))
        restored = KPIndex.load(path)
        assert restored.fingerprint is not None
        assert restored.fingerprint.matches(g)

    def test_invalid_structure_rejected_on_load(self, tmp_path):
        # validate() runs on load: an out-of-order p-number array must be
        # rejected even though the JSON itself is well-formed.
        import json

        from repro.errors import IndexPersistenceError

        payload = {
            "num_edges": 1,
            "arrays": {"1": {"vertices": [1, 2], "p_numbers": [0.9, 0.5]}},
        }
        path = tmp_path / "invalid.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(IndexPersistenceError):
            KPIndex.load(str(path))

    def test_failed_save_preserves_previous_file(self, tmp_path, monkeypatch):
        import os

        g = erdos_renyi_gnm(10, 18, seed=6)
        index = KPIndex.build(g)
        path = str(tmp_path / "index.json")
        index.save(path)
        before = open(path).read()

        def explode(src, dst):
            raise OSError("simulated replace failure")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            index.save(path)
        monkeypatch.undo()
        assert open(path).read() == before  # old snapshot untouched
        assert [p for p in os.listdir(tmp_path)] == ["index.json"]  # no temp litter
