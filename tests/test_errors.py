"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DatasetError,
    EdgeExistsError,
    EdgeListParseError,
    EdgeNotFoundError,
    GraphError,
    IndexStateError,
    ParameterError,
    ReproError,
    SelfLoopError,
    VertexNotFoundError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError("x"),
            VertexNotFoundError(1),
            EdgeNotFoundError(1, 2),
            EdgeExistsError(1, 2),
            SelfLoopError(1),
            ParameterError("x"),
            EdgeListParseError("x"),
            DatasetError("x"),
            IndexStateError("x"),
        ],
    )
    def test_everything_is_a_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_lookup_errors_are_key_errors(self):
        # so dict-style call sites can catch KeyError uniformly
        assert isinstance(VertexNotFoundError(1), KeyError)
        assert isinstance(EdgeNotFoundError(1, 2), KeyError)

    def test_value_style_errors_are_value_errors(self):
        assert isinstance(SelfLoopError(1), ValueError)
        assert isinstance(ParameterError("x"), ValueError)
        assert isinstance(EdgeExistsError(1, 2), ValueError)


class TestMessages:
    def test_vertex_message(self):
        assert "42" in str(VertexNotFoundError(42))

    def test_edge_messages(self):
        assert "(1, 2)" in str(EdgeNotFoundError(1, 2)).replace("'", "")
        assert "already" in str(EdgeExistsError(1, 2))

    def test_self_loop_message(self):
        assert "self loop" in str(SelfLoopError(3))

    def test_parse_error_carries_line(self):
        err = EdgeListParseError("bad token", line_number=7)
        assert "line 7" in str(err)
        assert "bad token" in str(err)
        bare = EdgeListParseError("bad token")
        assert "line" not in str(bare)
