"""Unit and randomized tests for KP-Index maintenance (Algs. 4-5)."""

import random

import pytest

from repro.errors import EdgeExistsError, EdgeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi_gnm,
    planted_partition,
)
from repro.core.index import KPIndex
from repro.core.maintenance import (
    KPIndexMaintainer,
    MaintenanceMode,
    MaintenanceStats,
)


def assert_index_exact(maintainer: KPIndexMaintainer) -> None:
    fresh = KPIndex.build(maintainer.graph)
    assert maintainer.index.semantically_equal(fresh)


@pytest.fixture(params=[MaintenanceMode.RANGE, MaintenanceMode.FULL_K])
def mode(request):
    return request.param


class TestSingleUpdates:
    def test_insert_then_delete_restores(self, cascade_graph, mode):
        maintainer = KPIndexMaintainer(cascade_graph.copy(), mode=mode, strict=True)
        original = KPIndex.build(cascade_graph)
        maintainer.insert_edge(5, 1)
        assert_index_exact(maintainer)
        maintainer.delete_edge(5, 1)
        assert maintainer.index.semantically_equal(original)

    def test_insert_new_vertex(self, triangle, mode):
        maintainer = KPIndexMaintainer(triangle.copy(), mode=mode, strict=True)
        maintainer.insert_edge(0, 99)
        assert_index_exact(maintainer)
        # the new vertex is in A_1 with p-number 1
        assert maintainer.index.p_number(99, 1) == 1.0  # noqa: KP002 exact-double oracle

    def test_delete_to_isolation_updates_a1(self, mode):
        g = Graph([(0, 1), (1, 2)])
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        maintainer.delete_edge(0, 1)
        assert_index_exact(maintainer)
        assert not maintainer.index.array(1).contains(0)

    def test_insert_extends_degeneracy(self, mode):
        # completing K4 from K4-minus-an-edge raises d(G) from 2 to 3
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        assert maintainer.index.degeneracy == 2
        maintainer.insert_edge(2, 3)
        assert maintainer.index.degeneracy == 3
        assert_index_exact(maintainer)

    def test_delete_shrinks_degeneracy(self, mode):
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])  # K4
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        maintainer.delete_edge(0, 1)
        assert maintainer.index.degeneracy == 2
        assert_index_exact(maintainer)

    def test_duplicate_insert_rejected(self, triangle, mode):
        maintainer = KPIndexMaintainer(triangle.copy(), mode=mode)
        with pytest.raises(EdgeExistsError):
            maintainer.insert_edge(0, 1)

    def test_missing_delete_rejected(self, triangle, mode):
        maintainer = KPIndexMaintainer(triangle.copy(), mode=mode)
        with pytest.raises(EdgeNotFoundError):
            maintainer.delete_edge(0, 9)

    def test_query_reflects_updates(self, mode):
        g = Graph([(0, 1), (1, 2), (2, 0), (0, 3)])
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        # vertex 0 keeps only 2/3 of its neighbours in the triangle
        assert set(maintainer.query(2, 2 / 3)) == {0, 1, 2}
        assert maintainer.query(2, 0.7) == []
        maintainer.delete_edge(0, 3)
        # without the tail, the triangle survives any p
        assert set(maintainer.query(2, 0.7)) == {0, 1, 2}
        assert set(maintainer.query(2, 1.0)) == {0, 1, 2}


class TestVertexDynamics:
    def test_insert_vertex_with_neighbors(self, triangle, mode):
        maintainer = KPIndexMaintainer(triangle.copy(), mode=mode, strict=True)
        maintainer.insert_vertex(9, neighbors=[0, 1, 2])
        assert_index_exact(maintainer)
        assert maintainer.core_number(9) == 3
        assert maintainer.index.p_number(9, 3) == 1.0  # noqa: KP002 exact-double oracle

    def test_insert_isolated_vertex(self, triangle, mode):
        maintainer = KPIndexMaintainer(triangle.copy(), mode=mode, strict=True)
        maintainer.insert_vertex("ghost")
        assert maintainer.core_number("ghost") == 0
        assert not maintainer.index.array(1).contains("ghost")
        assert_index_exact(maintainer)

    def test_delete_vertex(self, two_triangles_bridge, mode):
        maintainer = KPIndexMaintainer(
            two_triangles_bridge.copy(), mode=mode, strict=True
        )
        maintainer.delete_vertex(3)
        assert not maintainer.graph.has_vertex(3)
        assert_index_exact(maintainer)

    def test_missing_vertex_delete_raises(self, triangle, mode):
        from repro.errors import VertexNotFoundError

        maintainer = KPIndexMaintainer(triangle.copy(), mode=mode)
        with pytest.raises(VertexNotFoundError):
            maintainer.delete_vertex(42)

    def test_apply_updates_batch(self, mode):
        g = erdos_renyi_gnm(12, 30, seed=8)
        maintainer = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        deletions = list(g.edges())[:4]
        insertions = []
        seen = set()
        rng = random.Random(8)
        while len(insertions) < 4:
            u, v = rng.randrange(12), rng.randrange(12)
            key = frozenset((u, v))
            if u == v or g.has_edge(u, v) or key in seen:
                continue
            seen.add(key)
            insertions.append((u, v))
        maintainer.apply_updates(insertions=insertions, deletions=deletions)
        assert_index_exact(maintainer)


class TestStats:
    def test_counters_move(self, mode):
        g = erdos_renyi_gnm(20, 60, seed=1)
        maintainer = KPIndexMaintainer(g, mode=mode)
        maintainer.insert_edge(0, 19) if not g.has_edge(0, 19) else None
        edges = list(maintainer.graph.edges())
        maintainer.delete_edge(*edges[0])
        stats = maintainer.stats
        assert stats.deletions == 1
        assert stats.arrays_examined >= 0
        snapshot = stats.snapshot()
        assert isinstance(snapshot, dict)
        assert snapshot["deletions"] == 1

    def test_stats_defaults(self):
        stats = MaintenanceStats()
        assert stats.insertions == 0
        assert stats.fallback_rebuilds == 0


class TestRandomizedStreams:
    @pytest.mark.parametrize("seed", range(6))
    def test_er_stream(self, seed, mode):
        rng = random.Random(seed)
        n = rng.randint(6, 18)
        m = rng.randint(n, min(48, n * (n - 1) // 2))
        g = erdos_renyi_gnm(n, m, seed=seed)
        maintainer = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        edges = list(g.edges())
        for _ in range(25):
            if edges and rng.random() < 0.5:
                u, v = edges.pop(rng.randrange(len(edges)))
                maintainer.delete_edge(u, v)
            else:
                u, v = rng.randrange(n), rng.randrange(n)
                if u == v or maintainer.graph.has_edge(u, v):
                    continue
                maintainer.insert_edge(u, v)
                edges.append((u, v))
            assert_index_exact(maintainer)

    def test_powerlaw_deletions(self, mode):
        g = barabasi_albert(25, 3, seed=3)
        maintainer = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        rng = random.Random(3)
        edges = list(g.edges())
        for _ in range(20):
            u, v = edges.pop(rng.randrange(len(edges)))
            maintainer.delete_edge(u, v)
            assert_index_exact(maintainer)

    def test_community_graph_insertions(self, mode):
        g = planted_partition(3, 7, 0.7, 0.05, seed=4)
        maintainer = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        rng = random.Random(4)
        n = g.num_vertices
        done = 0
        while done < 20:
            u, v = rng.randrange(n), rng.randrange(n)
            if u == v or maintainer.graph.has_edge(u, v):
                continue
            maintainer.insert_edge(u, v)
            assert_index_exact(maintainer)
            done += 1

    def test_modes_agree(self):
        g = erdos_renyi_gnm(14, 36, seed=5)
        range_mode = KPIndexMaintainer(g.copy(), mode=MaintenanceMode.RANGE, strict=True)
        full_mode = KPIndexMaintainer(g.copy(), mode=MaintenanceMode.FULL_K, strict=True)
        rng = random.Random(5)
        edges = list(g.edges())
        for _ in range(25):
            if edges and rng.random() < 0.5:
                u, v = edges.pop(rng.randrange(len(edges)))
                range_mode.delete_edge(u, v)
                full_mode.delete_edge(u, v)
            else:
                u, v = rng.randrange(14), rng.randrange(14)
                if u == v or range_mode.graph.has_edge(u, v):
                    continue
                range_mode.insert_edge(u, v)
                full_mode.insert_edge(u, v)
                edges.append((u, v))
            assert range_mode.index.semantically_equal(full_mode.index)

    def test_no_fallbacks_in_strict_streams(self):
        g = erdos_renyi_gnm(16, 40, seed=6)
        maintainer = KPIndexMaintainer(g.copy(), strict=True)
        rng = random.Random(6)
        edges = list(g.edges())
        for _ in range(30):
            u, v = edges.pop(rng.randrange(len(edges)))
            maintainer.delete_edge(u, v)
        assert maintainer.stats.fallback_rebuilds == 0


def _array_snapshots(index: KPIndex) -> dict[int, tuple]:
    return {
        k: (tuple(a.vertices), tuple(a.p_numbers))
        for k, a in index.arrays().items()
    }


class TestVersionBumps:
    """The per-k version counters are a sound invalidation oracle:
    whenever an update changes A_k's content, version(k) must move.
    (The converse — no content change implies no bump — is deliberately
    NOT required: conservative bumps are safe, stale serves are not.)
    """

    def test_content_change_always_bumps(self, mode):
        g = erdos_renyi_gnm(14, 36, seed=8)
        maintainer = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        rng = random.Random(8)
        edges = list(g.edges())
        for _ in range(30):
            before = _array_snapshots(maintainer.index)
            versions = maintainer.index.versions()
            if edges and rng.random() < 0.5:
                u, v = edges.pop(rng.randrange(len(edges)))
                maintainer.delete_edge(u, v)
            else:
                u, v = rng.randrange(14), rng.randrange(14)
                if u == v or maintainer.graph.has_edge(u, v):
                    continue
                maintainer.insert_edge(u, v)
                edges.append((u, v))
            after = _array_snapshots(maintainer.index)
            for k in set(before) | set(after):
                if before.get(k) != after.get(k):
                    assert maintainer.index.version(k) != versions.get(k, 0), (
                        f"A_{k} changed without a version bump"
                    )

    def test_theorem_skip_leaves_versions_alone(self, mode):
        # A pendant edge between two fresh vertices cannot touch any
        # A_k with k >= 2 (Thm. 2: both new core numbers are 1).
        g = Graph([(0, 1), (1, 2), (2, 0)])
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        high_k = {
            k: maintainer.index.version(k) for k in range(2, 6)
        }
        maintainer.insert_edge(10, 11)
        assert_index_exact(maintainer)
        for k, version in high_k.items():
            assert maintainer.index.version(k) == version
        assert maintainer.index.version(1) > 0

    def test_array_creation_bumps(self, mode):
        # Completing K4 creates A_3 for the first time; a cached "A_3
        # does not exist -> empty" answer must be invalidated.
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)])
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        assert maintainer.index.version(3) == 0
        maintainer.insert_edge(2, 3)
        assert maintainer.index.version(3) > 0

    def test_vertex_deletion_bumps_a1(self, mode):
        g = Graph([(0, 1), (1, 2)])
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        before = maintainer.index.version(1)
        maintainer.delete_vertex(0)
        assert maintainer.index.version(1) > before
        assert_index_exact(maintainer)


class TestBatchVersionBumps:
    """apply_batch amortizes bumps: once per touched array per batch."""

    def test_batch_bumps_each_changed_array_exactly_once(self, mode):
        # 30 random updates applied one-by-one bump changed arrays ~30
        # times; the same updates in ONE batch bump each array at most
        # once — and exactly once when its content changed.
        g = erdos_renyi_gnm(14, 36, seed=31)
        maintainer = KPIndexMaintainer(g.copy(), mode=mode, strict=True)
        rng = random.Random(31)
        present = {frozenset(e) for e in g.edges()}
        ops = []
        for _ in range(30):
            u, v = rng.randrange(14), rng.randrange(14)
            if u == v:
                continue
            key = frozenset((u, v))
            if key in present:
                ops.append(("delete", u, v))
                present.discard(key)
            else:
                ops.append(("insert", u, v))
                present.add(key)
        before_bytes = _array_snapshots(maintainer.index)
        before_versions = maintainer.index.versions()
        maintainer.apply_batch(ops)
        after_bytes = _array_snapshots(maintainer.index)
        for k in set(before_bytes) | set(after_bytes):
            delta = maintainer.index.version(k) - before_versions.get(k, 0)
            if before_bytes.get(k) != after_bytes.get(k):
                assert delta == 1, (
                    f"A_{k} changed but bumped {delta} times in one batch"
                )
            else:
                assert delta <= 1
        assert_index_exact(maintainer)

    def test_untouched_arrays_never_bump(self, mode):
        # A batch of pendant edges between fresh vertices cannot touch
        # any A_k with k >= 2 (Thm. 2), so no high-k version may move.
        g = Graph([(0, 1), (1, 2), (2, 0)])
        maintainer = KPIndexMaintainer(g, mode=mode, strict=True)
        high_k = {k: maintainer.index.version(k) for k in range(2, 6)}
        maintainer.apply_batch(
            [("insert", 10, 11), ("insert", 12, 13), ("insert", 14, 15)]
        )
        for k, version in high_k.items():
            assert maintainer.index.version(k) == version
        assert maintainer.index.version(1) > 0
        assert_index_exact(maintainer)
