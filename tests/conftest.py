"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_gnm


@pytest.fixture
def triangle() -> Graph:
    """K3 on {0, 1, 2}."""
    return Graph([(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def triangle_with_tail() -> Graph:
    """K3 plus a pendant vertex 3 attached to 0."""
    return Graph([(0, 1), (1, 2), (2, 0), (0, 3)])


@pytest.fixture
def two_triangles_bridge() -> Graph:
    """Two triangles joined by one bridge edge (3 is the articulation)."""
    return Graph([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3)])


@pytest.fixture
def cascade_graph() -> Graph:
    """A tree-ish fringe plus a triangle {3, 5, 6} whose gateway is 3.

    The 2-core is exactly the triangle; vertex 3 keeps only 2 of its 3
    neighbours there (fraction 2/3), and when it peels, 5 and 6 cascade
    with it.  Their k=2 p-number is therefore *inherited* from 3's
    fraction — 2/3 is not a multiple of 1/deg for them, the case that
    breaks the paper's grid-form bounds.  Used as a regression fixture.
    """
    return Graph(
        [(0, 2), (0, 4), (1, 3), (1, 4), (3, 5), (3, 6), (5, 6)]
    )


@pytest.fixture
def figure1_like_graph() -> Graph:
    """A graph in the spirit of the paper's Fig. 1.

    A 3-core of nine vertices (10..18) split into a dense block and a
    sparser ring, plus low-degree satellites (0..3) hanging off it.
    """
    edges = [
        # dense block: K5 on 10..14
        (10, 11), (10, 12), (10, 13), (10, 14),
        (11, 12), (11, 13), (11, 14), (12, 13), (12, 14), (13, 14),
        # sparser 3-regular-ish attachment 15..18
        (15, 16), (16, 17), (17, 18), (18, 15),
        (15, 10), (16, 11), (17, 12), (18, 13),
        # satellites
        (0, 10), (1, 10), (2, 15), (3, 16), (0, 1),
    ]
    return Graph(edges)


@pytest.fixture
def random_graph_factory():
    """Factory of seeded random graphs for parametrized sweeps."""

    def factory(seed: int, n_range=(5, 18), density=0.35) -> Graph:
        rng = random.Random(seed)
        n = rng.randint(*n_range)
        max_edges = n * (n - 1) // 2
        m = rng.randint(n, max(n, int(density * max_edges)))
        return erdos_renyi_gnm(n, min(m, max_edges), seed=seed)

    return factory
