"""Unit tests for bench regression diffing (``repro bench diff``)."""

from __future__ import annotations

import json

import pytest

from repro.bench.diffing import (
    DEFAULT_TOLERANCE,
    diff_files,
    diff_payloads,
    render_diff,
)
from repro.errors import ParameterError


def _payload(entries, audits=None, **top):
    payload = {"entries": entries}
    if audits is not None:
        payload["audits"] = audits
    payload.update(top)
    return payload


def _entry(**overrides):
    entry = {"engine": "bucket", "workers": 1, "min_s": 1.0, "median_s": 1.1}
    entry.update(overrides)
    return entry


class TestMatching:
    def test_identical_payloads_do_not_regress(self):
        payload = _payload([_entry()])
        diff = diff_payloads(payload, payload)
        assert not diff.regressed
        assert diff.entries[0].status == "matched"

    def test_entries_match_on_identity_keys(self):
        old = _payload([_entry(workers=1), _entry(workers=4, min_s=0.5)])
        new = _payload([_entry(workers=4, min_s=0.5), _entry(workers=1)])
        diff = diff_payloads(old, new)
        assert not diff.regressed
        assert all(e.status == "matched" for e in diff.entries)

    def test_missing_entry_in_new_is_a_regression(self):
        old = _payload([_entry(workers=1), _entry(workers=4)])
        new = _payload([_entry(workers=1)])
        diff = diff_payloads(old, new)
        assert diff.regressed
        statuses = {e.identity: e.status for e in diff.entries}
        assert statuses["engine=bucket workers=4"] == "missing_in_new"

    def test_new_entry_is_reported_but_not_a_regression(self):
        old = _payload([_entry(workers=1)])
        new = _payload([_entry(workers=1), _entry(workers=4)])
        diff = diff_payloads(old, new)
        assert not diff.regressed
        assert any(e.status == "missing_in_old" for e in diff.entries)

    def test_audits_are_compared_too(self):
        old = _payload([], audits=[{"cache": True, "stale_serves": 0}])
        new = _payload([], audits=[{"cache": True, "stale_serves": 3}])
        diff = diff_payloads(old, new)
        assert diff.regressed  # stale went 0 -> 3 (lower is better)


class TestTolerance:
    def test_slowdown_within_tolerance_is_noise(self):
        old = _payload([_entry(min_s=1.0)])
        new = _payload([_entry(min_s=1.2)])  # +20% < 25% default
        assert not diff_payloads(old, new).regressed

    def test_slowdown_beyond_tolerance_regresses(self):
        old = _payload([_entry(min_s=1.0)])
        new = _payload([_entry(min_s=1.3)])  # +30%
        diff = diff_payloads(old, new)
        assert diff.regressed
        (delta,) = diff.entries[0].regressions
        assert delta.name == "min_s"
        assert delta.relative_change == pytest.approx(0.3)

    def test_higher_is_better_metrics_regress_downward(self):
        old = _payload([{"threads": 2, "qps": 1000.0}])
        new = _payload([{"threads": 2, "qps": 100.0}])
        diff = diff_payloads(old, new)
        assert diff.regressed
        up = diff_payloads(new, old)
        assert not up.regressed
        assert up.entries[0].deltas[0].improved

    def test_custom_tolerance(self):
        old = _payload([_entry(min_s=1.0)])
        new = _payload([_entry(min_s=1.2)])
        assert diff_payloads(old, new, tolerance=0.1).regressed
        assert not diff_payloads(old, new, tolerance=0.5).regressed

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ParameterError, match="tolerance"):
            diff_payloads(_payload([]), _payload([]), tolerance=-0.1)

    def test_nested_latency_percentiles_are_directional(self):
        old = _payload([{"threads": 1, "latency_ms": {"p99": 1.0}}])
        new = _payload([{"threads": 1, "latency_ms": {"p99": 2.0}}])
        assert diff_payloads(old, new).regressed

    def test_undirected_metrics_never_regress(self):
        old = _payload([{"threads": 1, "queries": 100}])
        new = _payload([{"threads": 1, "queries": 900}])
        assert not diff_payloads(old, new).regressed

    def test_zero_baseline_regresses_only_when_bad_appears(self):
        old = _payload([{"cache": True, "stale_serves": 0}])
        new = _payload([{"cache": True, "stale_serves": 1}])
        diff = diff_payloads(old, new)
        assert diff.regressed
        (delta,) = diff.entries[0].regressions
        assert delta.relative_change == float("inf")


class TestNotesAndLabels:
    def test_latency_method_mismatch_noted(self):
        old = _payload([_entry()])
        new = _payload([_entry()], latency_method="interpolated-reservoir")
        diff = diff_payloads(old, new)
        assert any("latency methods differ" in note for note in diff.notes)
        assert not diff.regressed

    def test_provenance_labels_rendered(self):
        prov = {
            "git_commit": "abc1234",
            "recorded_at": "2026-08-08T00:00:00+00:00",
            "python": "3.11.0",
            "cpus": 4,
        }
        diff = diff_payloads(
            _payload([_entry()], provenance=prov), _payload([_entry()])
        )
        assert "abc1234" in diff.old_label
        assert diff.new_label == "no provenance recorded"

    def test_render_mentions_regressions_and_count(self):
        old = _payload([_entry(min_s=1.0)])
        new = _payload([_entry(min_s=2.0)])
        text = render_diff(diff_payloads(old, new))
        assert "REGRESSION" in text
        assert "1 regression(s) across 1 entries" in text
        clean = render_diff(diff_payloads(old, old))
        assert "no regressions across 1 entries" in clean

    def test_default_tolerance_value(self):
        assert DEFAULT_TOLERANCE == 0.25


class TestFiles:
    def test_diff_files_round_trip(self, tmp_path):
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        old_path.write_text(json.dumps(_payload([_entry(min_s=1.0)])))
        new_path.write_text(json.dumps(_payload([_entry(min_s=1.0)])))
        assert not diff_files(old_path, new_path).regressed

    def test_missing_file_raises_parameter_error(self, tmp_path):
        present = tmp_path / "old.json"
        present.write_text("{}")
        with pytest.raises(ParameterError, match="not found"):
            diff_files(present, tmp_path / "absent.json")

    def test_invalid_json_raises_parameter_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ParameterError, match="valid JSON"):
            diff_files(bad, bad)
