"""Unit tests for the (k,p)-core hierarchy utilities."""

import pytest

from repro.graph.generators import erdos_renyi_gnm
from repro.core.decomposition import kp_core_decomposition
from repro.core.hierarchy import core_profile, nested_cores, p_levels
from repro.core.kpcore import kp_core_vertices


class TestPLevels:
    def test_levels_partition_the_k_core(self, cascade_graph):
        levels = p_levels(cascade_graph, 2)
        union = set()
        for level in levels:
            assert not (union & level.vertices)
            union |= level.vertices
        decomposition = kp_core_decomposition(cascade_graph)
        assert union == set(decomposition.arrays[2].order)

    def test_levels_sorted_ascending(self):
        g = erdos_renyi_gnm(20, 60, seed=1)
        levels = p_levels(g, 2)
        values = [level.p for level in levels]
        assert values == sorted(values)

    def test_missing_k_gives_empty(self, triangle):
        assert p_levels(triangle, 9) == []  # noqa: KP002 exact-double oracle

    def test_reuses_precomputed_decomposition(self, cascade_graph):
        decomposition = kp_core_decomposition(cascade_graph)
        assert p_levels(cascade_graph, 2, decomposition) == p_levels(  # noqa: KP002 exact-double oracle
            cascade_graph, 2
        )


class TestNestedCores:
    def test_chain_is_strictly_nested(self):
        g = erdos_renyi_gnm(25, 80, seed=2)
        chain = nested_cores(g, 2)
        for (p_low, low), (p_high, high) in zip(chain, chain[1:]):
            assert p_low < p_high
            assert high < low  # strict subset

    def test_chain_matches_direct_queries(self):
        g = erdos_renyi_gnm(25, 80, seed=3)
        for p, members in nested_cores(g, 3):
            assert members == kp_core_vertices(g, 3, p)

    def test_first_entry_is_whole_k_core(self, cascade_graph):
        chain = nested_cores(cascade_graph, 2)
        assert chain[0][1] == kp_core_vertices(cascade_graph, 2, 0.0)


class TestCoreProfile:
    def test_profile_spans_core_number(self, cascade_graph):
        decomposition = kp_core_decomposition(cascade_graph)
        profile = core_profile(cascade_graph, 3, decomposition)
        assert [k for k, _ in profile] == list(
            range(1, decomposition.core_numbers[3] + 1)
        )

    def test_profile_values_match_decomposition(self):
        g = erdos_renyi_gnm(15, 40, seed=4)
        decomposition = kp_core_decomposition(g)
        for v in g.vertices():
            for k, pn in core_profile(g, v, decomposition):
                assert decomposition.arrays[k].pn_map()[v] == pn  # noqa: KP002 exact-double oracle

    def test_profile_of_isolated_vertex_is_empty(self):
        g = erdos_renyi_gnm(10, 15, seed=5)
        g.add_vertex("loner")
        assert core_profile(g, "loner") == []

    def test_profile_non_monotone_possible(self):
        # the paper's "Discussion of KP-Index" notes p-numbers need not be
        # monotone in k; find a witness on a small sweep of random graphs
        found = False
        for seed in range(30):
            g = erdos_renyi_gnm(12, 30, seed=seed)
            decomposition = kp_core_decomposition(g)
            for v in g.vertices():
                profile = core_profile(g, v, decomposition)
                pns = [pn for _, pn in profile]
                if any(a > b for a, b in zip(pns, pns[1:])):
                    found = True
                    break
            if found:
                break
        assert found
