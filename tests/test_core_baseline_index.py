"""Tests for the materialized-cores baseline index."""

import pytest

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.generators import erdos_renyi_gnm, planted_partition
from repro.core.baseline_index import MaterializedIndex
from repro.core.index import KPIndex
from repro.core.kpcore import kp_core_vertices


class TestQueries:
    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_kp_index(self, seed):
        g = erdos_renyi_gnm(22, 66, seed=seed)
        baseline = MaterializedIndex.build(g)
        index = KPIndex.build(g)
        for k in range(1, baseline.degeneracy + 2):
            for p in (0.0, 0.3, 0.5, 0.75, 1.0):
                assert set(baseline.query(k, p)) == set(index.query(k, p))

    def test_agrees_with_direct_computation(self):
        g = planted_partition(2, 9, 0.8, 0.05, seed=1)
        baseline = MaterializedIndex.build(g)
        for k in (1, 2, 3):
            for p in (0.4, 0.6, 0.9):
                assert set(baseline.query(k, p)) == kp_core_vertices(g, k, p)

    def test_out_of_range(self, triangle):
        baseline = MaterializedIndex.build(triangle)
        assert baseline.query(9, 0.5) == []
        with pytest.raises(ParameterError):
            baseline.query(0, 0.5)
        with pytest.raises(ParameterError):
            baseline.query(1, 2.0)

    def test_empty_graph(self):
        baseline = MaterializedIndex.build(Graph())
        assert baseline.degeneracy == 0
        assert baseline.query(1, 0.5) == []


class TestSpace:
    def test_baseline_never_smaller(self):
        # the materialized design stores every vertex once per level at or
        # below its p-number; the KP-Index stores it exactly once per array
        for seed in range(4):
            g = erdos_renyi_gnm(25, 80, seed=seed)
            baseline = MaterializedIndex.build(g)
            index = KPIndex.build(g)
            assert (
                baseline.vertex_entries()
                >= index.space_stats().vertex_entries
            )

    def test_blowup_grows_with_level_count(self):
        # realistic level-rich graphs inflate the baseline severely: each
        # vertex is stored once per level at or below its own
        from repro.datasets import load

        g = load("brightkite")
        baseline = MaterializedIndex.build(g)
        index = KPIndex.build(g)
        ratio = baseline.vertex_entries() / index.space_stats().vertex_entries
        assert ratio > 2.0

    def test_level_entries_match_kp_index(self):
        g = erdos_renyi_gnm(20, 55, seed=8)
        baseline = MaterializedIndex.build(g)
        index = KPIndex.build(g)
        assert baseline.level_entries() == index.space_stats().p_number_entries  # noqa: KP002 exact-double oracle
