"""Unit tests for BFS and connected components."""

import pytest

from repro.errors import VertexNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import cycle_graph
from repro.graph.traversal import (
    bfs_distances,
    bfs_order,
    component_of,
    connected_components,
    is_connected,
    largest_component,
)


@pytest.fixture
def two_components() -> Graph:
    g = Graph([(0, 1), (1, 2), (2, 0), (0, 3)])  # component of 4
    g.add_edge(10, 11)  # component of 2
    g.add_vertex(20)  # isolated singleton
    return g


class TestBfs:
    def test_order_starts_at_source(self, triangle):
        order = list(bfs_order(triangle, 1))
        assert order[0] == 1
        assert set(order) == {0, 1, 2}

    def test_distances_on_cycle(self):
        g = cycle_graph(6)
        dist = bfs_distances(g, 0)
        assert dist == {0: 0, 1: 1, 5: 1, 2: 2, 4: 2, 3: 3}

    def test_unknown_source_raises(self, triangle):
        with pytest.raises(VertexNotFoundError):
            list(bfs_order(triangle, 42))
        with pytest.raises(VertexNotFoundError):
            bfs_distances(triangle, 42)

    def test_bfs_restricted_to_component(self, two_components):
        assert set(bfs_order(two_components, 10)) == {10, 11}


class TestComponents:
    def test_component_of(self, two_components):
        assert component_of(two_components, 2) == {0, 1, 2, 3}
        assert component_of(two_components, 20) == {20}

    def test_connected_components_sorted_by_size(self, two_components):
        comps = connected_components(two_components)
        assert [len(c) for c in comps] == [4, 2, 1]

    def test_is_connected(self, triangle, two_components):
        assert is_connected(triangle)
        assert not is_connected(two_components)
        assert is_connected(Graph())  # vacuous
        single = Graph()
        single.add_vertex(1)
        assert is_connected(single)

    def test_largest_component_graph(self, two_components):
        largest = largest_component(two_components)
        assert set(largest.vertices()) == {0, 1, 2, 3}
        assert largest.num_edges == 4

    def test_largest_component_of_empty(self):
        assert largest_component(Graph()).num_vertices == 0
