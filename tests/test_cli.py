"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.io import write_edge_list


@pytest.fixture
def edge_list_file(tmp_path, figure1_like_graph):
    path = tmp_path / "graph.txt"
    write_edge_list(figure1_like_graph, path)
    return str(path)


class TestStats:
    def test_prints_counts(self, edge_list_file, capsys):
        assert main(["stats", edge_list_file]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out
        assert "degeneracy" in out

    def test_missing_file(self, capsys):
        assert main(["stats", "/no/such/file"]) == 1
        assert "error" in capsys.readouterr().err


class TestKpCore:
    def test_members_printed(self, edge_list_file, capsys):
        assert main(["kpcore", edge_list_file, "-k", "3", "-p", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "-core:" in out

    def test_invalid_p_reports_error(self, edge_list_file, capsys):
        assert main(["kpcore", edge_list_file, "-k", "3", "-p", "1.5"]) == 1
        assert "error" in capsys.readouterr().err


class TestDecompose:
    def test_p_numbers_listed(self, edge_list_file, capsys):
        assert main(["decompose", edge_list_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "p-numbers for k=2" in out
        # tab-separated vertex/value lines
        lines = [l for l in out.splitlines() if "\t" in l]
        assert lines
        for line in lines:
            float(line.split("\t")[1])


class TestIndexCommands:
    def test_build_then_query_round_trip(self, edge_list_file, tmp_path, capsys):
        index_path = str(tmp_path / "index.json")
        assert main(["index", "build", edge_list_file, "-o", index_path]) == 0
        payload = json.load(open(index_path))
        assert "arrays" in payload
        capsys.readouterr()
        assert main(["index", "query", index_path, "-k", "3", "-p", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "(3,0.5)-core" in out


class TestDataset:
    def test_stats_only(self, capsys):
        assert main(["dataset", "facebook"]) == 0
        out = capsys.readouterr().out
        assert "facebook" in out and "davg" in out

    def test_write_edge_list(self, tmp_path, capsys):
        target = str(tmp_path / "fb.txt")
        assert main(["dataset", "facebook", "-o", target]) == 0
        content = open(target).read()
        assert content.startswith("# synthetic stand-in for facebook")

    def test_unknown_dataset(self, capsys):
        assert main(["dataset", "imaginary"]) == 1
        assert "unknown dataset" in capsys.readouterr().err


class TestReport:
    def test_table2(self, capsys):
        assert main(["report", "table2"]) == 0
        out = capsys.readouterr().out
        assert "orkut" in out

    def test_fig6(self, capsys):
        assert main(["report", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "|k-core|" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["report", "fig99"])
