"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.graph.io import write_edge_list


@pytest.fixture
def edge_list_file(tmp_path, figure1_like_graph):
    path = tmp_path / "graph.txt"
    write_edge_list(figure1_like_graph, path)
    return str(path)


class TestStats:
    def test_prints_counts(self, edge_list_file, capsys):
        assert main(["stats", edge_list_file]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out
        assert "degeneracy" in out

    def test_missing_file(self, capsys):
        assert main(["stats", "/no/such/file"]) == 1
        assert "error" in capsys.readouterr().err


class TestKpCore:
    def test_members_printed(self, edge_list_file, capsys):
        assert main(["kpcore", edge_list_file, "-k", "3", "-p", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "-core:" in out

    def test_invalid_p_reports_error(self, edge_list_file, capsys):
        assert main(["kpcore", edge_list_file, "-k", "3", "-p", "1.5"]) == 1
        assert "error" in capsys.readouterr().err


class TestDecompose:
    def test_p_numbers_listed(self, edge_list_file, capsys):
        assert main(["decompose", edge_list_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "p-numbers for k=2" in out
        # tab-separated vertex/value lines
        lines = [l for l in out.splitlines() if "\t" in l]
        assert lines
        for line in lines:
            float(line.split("\t")[1])

    def test_engine_flag_matches_default(self, edge_list_file, capsys):
        assert main(["decompose", edge_list_file, "-k", "2"]) == 0
        default_out = capsys.readouterr().out
        assert main(
            ["decompose", edge_list_file, "-k", "2", "--engine", "heap"]
        ) == 0
        assert capsys.readouterr().out == default_out

    def test_full_decomposition_summary(self, edge_list_file, capsys):
        assert main(["decompose", edge_list_file]) == 0
        out = capsys.readouterr().out
        assert "degeneracy=" in out
        assert "k=1\t" in out

    def test_parallel_full_decomposition(self, edge_list_file, capsys):
        assert main(["decompose", edge_list_file]) == 0
        serial_out = capsys.readouterr().out.replace("workers=1", "workers=2")
        assert main(["decompose", edge_list_file, "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_workers_with_fixed_k_rejected(self, edge_list_file, capsys):
        assert main(
            ["decompose", edge_list_file, "-k", "2", "--workers", "2"]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestIndexCommands:
    def test_build_then_query_round_trip(self, edge_list_file, tmp_path, capsys):
        index_path = str(tmp_path / "index.json")
        assert main(["index", "build", edge_list_file, "-o", index_path]) == 0
        document = json.load(open(index_path))
        assert document["format_version"] == 2
        assert "arrays" in document["payload"]
        assert "fingerprint" in document
        capsys.readouterr()
        assert main(["index", "query", index_path, "-k", "3", "-p", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "(3,0.5)-core" in out

    def test_query_corrupt_index_reports_error(self, tmp_path, capsys):
        # Truncated JSON must exit 1 with an `error:` line, not a traceback.
        path = tmp_path / "bad.json"
        path.write_text('{"num_edges": 3')
        assert main(["index", "query", str(path), "-k", "2", "-p", "0.5"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_query_foreign_json_reports_error(self, tmp_path, capsys):
        path = tmp_path / "foreign.json"
        path.write_text('{"hello": "world"}')
        assert main(["index", "query", str(path), "-k", "2", "-p", "0.5"]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_build_into_directory_reports_error(
        self, edge_list_file, tmp_path, capsys
    ):
        # IsADirectoryError is an OSError outside ReproError; it must be
        # reported cleanly instead of escaping as a traceback.
        assert main(
            ["index", "build", edge_list_file, "-o", str(tmp_path)]
        ) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestIndexUpdateRecover:
    @staticmethod
    def _write_stream(path, lines):
        path.write_text("".join(line + "\n" for line in lines))
        return str(path)

    def test_update_then_recover_round_trip(self, tmp_path, capsys):
        stream = self._write_stream(
            tmp_path / "stream.txt",
            ["+ 1 2", "+ 2 3", "+ 3 1", "+ 1 4", "- 1 4"],
        )
        state = str(tmp_path / "state")
        assert main(
            ["index", "update", state, "--stream", stream,
             "--checkpoint-every", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "applied 5 updates" in out
        assert main(["index", "recover", state]) == 0
        out = capsys.readouterr().out
        assert "recovered from checkpoint" in out

    def test_update_skip_policy_counts_duplicates(self, tmp_path, capsys):
        stream = self._write_stream(
            tmp_path / "stream.txt", ["+ 1 2", "+ 1 2", "- 9 9"]
        )
        state = str(tmp_path / "state")
        assert main(
            ["index", "update", state, "--stream", stream,
             "--on-error", "skip"]
        ) == 0
        assert "skipped 2" in capsys.readouterr().out

    def test_update_fail_policy_reports_error(self, tmp_path, capsys):
        stream = self._write_stream(tmp_path / "stream.txt", ["- 1 2"])
        state = str(tmp_path / "state")
        assert main(["index", "update", state, "--stream", stream]) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_update_rejects_temporal_stream_without_optin(
        self, tmp_path, capsys
    ):
        stream = self._write_stream(tmp_path / "stream.txt", ["1 2 1700000000"])
        state = str(tmp_path / "state")
        assert main(["index", "update", state, "--stream", stream]) == 1
        assert "line 1" in capsys.readouterr().err
        capsys.readouterr()
        assert main(
            ["index", "update", state, "--stream", stream,
             "--ignore-extra-tokens"]
        ) == 0
        assert "applied 1 updates" in capsys.readouterr().out

    def test_recover_missing_directory_reports_error(self, tmp_path, capsys):
        assert main(["index", "recover", str(tmp_path / "nope")]) == 1
        assert capsys.readouterr().err.startswith("error:")


class TestIndexServeBench:
    SPEC = "ops=60,vertices=12,kmax=3,prefill=15"

    def test_reports_throughput_and_cache(self, tmp_path, capsys):
        assert main(
            ["index", "serve-bench", str(tmp_path / "state"),
             "--workload", self.SPEC, "--threads", "2", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "threads 2  batch 1  cache on" in out
        assert "throughput" in out
        assert "latency ms" in out
        assert "hit_rate=" in out

    def test_probe_every_audits_against_naive(self, tmp_path, capsys):
        assert main(
            ["index", "serve-bench", str(tmp_path / "state"),
             "--workload", self.SPEC, "--threads", "1", "--seed", "1",
             "--probe-every", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "stale_serves 0 (vs naive fixpoint)" in out

    def test_no_cache_and_json_output(self, tmp_path, capsys):
        report = tmp_path / "serve.json"
        assert main(
            ["index", "serve-bench", str(tmp_path / "state"),
             "--workload", self.SPEC, "--no-cache", "--json", str(report)]
        ) == 0
        out = capsys.readouterr().out
        assert "cache off" in out
        document = json.load(open(report))
        assert document["cache"] is False
        assert document["cache_stats"]["hits"] == 0
        assert document["queries"] > 0

    def test_bad_workload_spec_reports_error(self, tmp_path, capsys):
        assert main(
            ["index", "serve-bench", str(tmp_path / "state"),
             "--workload", "bogus=1"]
        ) == 1
        assert capsys.readouterr().err.startswith("error:")

    def test_batch_size_flag_routes_updates_through_apply_batch(
        self, tmp_path, capsys
    ):
        report = tmp_path / "serve.json"
        assert main(
            ["index", "serve-bench", str(tmp_path / "state"),
             "--workload", self.SPEC, "--threads", "1", "--seed", "1",
             "--batch-size", "8", "--probe-every", "1",
             "--json", str(report)]
        ) == 0
        out = capsys.readouterr().out
        assert "batch 8" in out
        assert "stale_serves 0 (vs naive fixpoint)" in out
        document = json.load(open(report))
        assert document["batch"] == 8
        assert ",batch=8" in document["spec"]

    def test_batch_key_in_spec_is_honoured(self, tmp_path, capsys):
        assert main(
            ["index", "serve-bench", str(tmp_path / "state"),
             "--workload", self.SPEC + ",batch=4", "--threads", "1",
             "--seed", "1"]
        ) == 0
        assert "batch 4" in capsys.readouterr().out


class TestDataset:
    def test_stats_only(self, capsys):
        assert main(["dataset", "facebook"]) == 0
        out = capsys.readouterr().out
        assert "facebook" in out and "davg" in out

    def test_write_edge_list(self, tmp_path, capsys):
        target = str(tmp_path / "fb.txt")
        assert main(["dataset", "facebook", "-o", target]) == 0
        content = open(target).read()
        assert content.startswith("# synthetic stand-in for facebook")

    def test_unknown_dataset(self, capsys):
        assert main(["dataset", "imaginary"]) == 1
        assert "unknown dataset" in capsys.readouterr().err


class TestBuiltinGraphs:
    def test_builtin_prefix_loads_a_dataset(self, capsys):
        assert main(["stats", "builtin:facebook"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out and "degeneracy" in out

    def test_unknown_builtin_reports_error(self, capsys):
        assert main(["stats", "builtin:imaginary"]) == 1
        assert "error" in capsys.readouterr().err


class TestProfile:
    ARGS = ["kpcore", "builtin:facebook", "-k", "3", "-p", "0.5"]

    def test_profile_prints_metrics_report(self, capsys):
        assert main(["profile", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "profile: kpcore" in out
        assert "kcore.peel.calls" in out
        assert "kpcore" in out  # span table

    def test_profile_restores_the_previous_collector(self):
        from repro.obs import get_collector

        before = get_collector()
        main(["profile", *self.ARGS])
        assert get_collector() is before

    def test_profile_json_snapshot_round_trips(self, tmp_path, capsys):
        from repro.obs import MetricsSnapshot, render_report

        target = str(tmp_path / "metrics.json")
        assert main(["profile", "--json", target, *self.ARGS]) == 0
        capsys.readouterr()
        snapshot = MetricsSnapshot.load(target)
        assert snapshot.counter("kpcore.calls") == 1
        # the reloaded snapshot renders through the same reporting table
        assert "kcore.peel.calls" in render_report(snapshot)

    def test_profile_without_command_errors(self, capsys):
        assert main(["profile"]) == 2
        assert "error" in capsys.readouterr().err

    def test_profile_cannot_wrap_itself(self, capsys):
        assert main(["profile", "profile", "stats", "x"]) == 2
        assert "error" in capsys.readouterr().err


class TestTrace:
    SPEC = "ops=60,vertices=12,kmax=3,prefill=15"

    def _trace_args(self, tmp_path, *extra):
        return [
            "trace", *extra,
            "index", "serve-bench", str(tmp_path / "state"),
            "--workload", self.SPEC, "--threads", "1", "--seed", "1",
        ]

    def test_attribution_table_splits_latency_buckets(self, tmp_path, capsys):
        trace_json = tmp_path / "trace.json"
        assert main(
            self._trace_args(tmp_path, "--json", str(trace_json))
        ) == 0
        out = capsys.readouterr().out
        assert "trace attribution" in out
        for bucket in ("lock-wait", "cache-probe", "answer-build"):
            assert bucket in out
        assert "slowest spans" in out

    def test_chrome_export_is_schema_valid(self, tmp_path, capsys):
        from repro.obs.trace_export import validate_chrome_trace

        trace_json = tmp_path / "trace.json"
        assert main(
            self._trace_args(tmp_path, "--json", str(trace_json))
        ) == 0
        capsys.readouterr()
        payload = json.load(open(trace_json))
        assert validate_chrome_trace(payload) == []
        assert payload["traceEvents"], "traced run must emit events"
        names = {event["name"] for event in payload["traceEvents"]}
        assert "trace.command" in names
        # serve-bench issues batched reads, so the request root is query_many
        assert "trace.server.query_many" in names
        assert "trace.query.answer" in names

    def test_jsonl_export_round_trips(self, tmp_path, capsys):
        from repro.obs.trace_export import read_jsonl

        trace_json = tmp_path / "trace.json"
        trace_jsonl = tmp_path / "trace.jsonl"
        assert main(
            self._trace_args(
                tmp_path, "--json", str(trace_json),
                "--jsonl", str(trace_jsonl),
            )
        ) == 0
        capsys.readouterr()
        events = read_jsonl(trace_jsonl)
        assert events
        assert all(event.trace_id for event in events)

    def test_trace_restores_the_previous_tracer(self, tmp_path, capsys):
        from repro.obs.trace import get_tracer

        before = get_tracer()
        main(self._trace_args(tmp_path, "--json", str(tmp_path / "t.json")))
        capsys.readouterr()
        assert get_tracer() is before

    def test_buffer_overflow_is_reported(self, tmp_path, capsys):
        assert main(
            self._trace_args(
                tmp_path, "--json", str(tmp_path / "t.json"), "--buffer", "4"
            )
        ) == 0
        out = capsys.readouterr().out
        assert "ring buffer dropped" in out

    def test_trace_without_command_errors(self, capsys):
        assert main(["trace"]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_cannot_wrap_itself(self, capsys):
        assert main(["trace", "trace", "stats", "x"]) == 2
        assert "error" in capsys.readouterr().err


class TestBenchDiff:
    @staticmethod
    def _write(path, entries):
        path.write_text(json.dumps({"entries": entries}))
        return str(path)

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json", [{"engine": "bucket", "min_s": 1.0}]
        )
        new = self._write(
            tmp_path / "new.json", [{"engine": "bucket", "min_s": 1.05}]
        )
        assert main(["bench", "diff", old, new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json", [{"engine": "bucket", "min_s": 1.0}]
        )
        new = self._write(
            tmp_path / "new.json", [{"engine": "bucket", "min_s": 2.0}]
        )
        assert main(["bench", "diff", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag_loosens_the_gate(self, tmp_path, capsys):
        old = self._write(
            tmp_path / "old.json", [{"engine": "bucket", "min_s": 1.0}]
        )
        new = self._write(
            tmp_path / "new.json", [{"engine": "bucket", "min_s": 2.0}]
        )
        assert main(["bench", "diff", old, new, "--tolerance", "2.0"]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_missing_file_reports_error(self, tmp_path, capsys):
        old = self._write(tmp_path / "old.json", [])
        assert main(
            ["bench", "diff", old, str(tmp_path / "absent.json")]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_committed_serving_baseline_self_diffs_clean(self, capsys):
        assert main(
            ["bench", "diff", "BENCH_serve.json", "BENCH_serve.json"]
        ) == 0
        assert "no regressions" in capsys.readouterr().out


class TestReport:
    def test_table2(self, capsys):
        assert main(["report", "table2"]) == 0
        out = capsys.readouterr().out
        assert "orkut" in out

    def test_fig6(self, capsys):
        assert main(["report", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "|k-core|" in out

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["report", "fig99"])
