"""Unit tests for direct k-core computation, with a networkx oracle."""

import networkx as nx
import pytest

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.compact import CompactAdjacency
from repro.graph.generators import complete_graph, erdos_renyi_gnm, star_graph
from repro.kcore.compute import k_core, k_core_vertices, k_core_vertices_compact


def nx_k_core_vertices(graph: Graph, k: int) -> set:
    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return set(nx.k_core(g, k).nodes)


class TestKnownGraphs:
    def test_triangle_2core(self, triangle_with_tail):
        assert k_core_vertices(triangle_with_tail, 2) == {0, 1, 2}

    def test_k_zero_keeps_everything(self, triangle_with_tail):
        assert k_core_vertices(triangle_with_tail, 0) == {0, 1, 2, 3}

    def test_star_has_no_2core(self):
        assert k_core_vertices(star_graph(5), 2) == set()

    def test_complete_graph(self):
        g = complete_graph(6)
        assert k_core_vertices(g, 5) == set(range(6))
        assert k_core_vertices(g, 6) == set()

    def test_cascading_removal(self):
        # path of degree-2 vertices collapses entirely at k=2
        g = Graph([(0, 1), (1, 2), (2, 3)])
        assert k_core_vertices(g, 2) == set()

    def test_returns_induced_subgraph(self, triangle_with_tail):
        core = k_core(triangle_with_tail, 2)
        assert core.num_vertices == 3
        assert core.num_edges == 3

    def test_negative_k_rejected(self, triangle):
        with pytest.raises(ParameterError):
            k_core_vertices(triangle, -1)


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_all_k(self, seed):
        g = erdos_renyi_gnm(30, 80, seed=seed)
        for k in range(0, 10):
            assert k_core_vertices(g, k) == nx_k_core_vertices(g, k)


class TestThresholdPeeling:
    def test_per_vertex_thresholds(self):
        # threshold array reproducing the plain k-core
        g = erdos_renyi_gnm(20, 50, seed=3)
        snap = CompactAdjacency(g)
        plain = k_core_vertices_compact(snap, 3)
        custom = k_core_vertices_compact(snap, 3, thresholds=[3] * 20)
        assert plain == custom

    def test_threshold_length_validated(self, triangle):
        snap = CompactAdjacency(triangle)
        with pytest.raises(ParameterError):
            k_core_vertices_compact(snap, 1, thresholds=[1, 1])

    def test_heterogeneous_thresholds(self):
        g = complete_graph(5)
        snap = CompactAdjacency(g)
        thresholds = [5, 0, 0, 0, 0]  # vertex 0 is impossible to satisfy
        survivors = {snap.labels[i] for i in k_core_vertices_compact(snap, 0, thresholds)}
        assert survivors == {1, 2, 3, 4}
