"""Tests for the naive reference implementations themselves.

The oracles must be right for the rest of the suite to mean anything, so
they get their own hand-computed checks.
"""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, cycle_graph, star_graph
from repro.core.naive import (
    naive_core_numbers,
    naive_kp_core_vertices,
    naive_p_number,
    naive_p_numbers_fixed_k,
)


class TestNaiveKpCore:
    def test_triangle_with_tail(self, triangle_with_tail):
        assert naive_kp_core_vertices(triangle_with_tail, 2, 0.0) == {0, 1, 2}
        assert naive_kp_core_vertices(triangle_with_tail, 2, 2 / 3) == {0, 1, 2}
        assert naive_kp_core_vertices(triangle_with_tail, 2, 0.7) == set()

    def test_complete(self):
        assert naive_kp_core_vertices(complete_graph(4), 3, 1.0) == {0, 1, 2, 3}

    def test_empty_graph(self):
        assert naive_kp_core_vertices(Graph(), 1, 0.5) == set()

    def test_simultaneous_removal_fixpoint(self):
        # a 4-cycle at k=2 survives; at p > 1/2 with an extra pendant each,
        # everything collapses simultaneously
        g = cycle_graph(4)
        for i in range(4):
            g.add_edge(i, 10 + i)
        assert naive_kp_core_vertices(g, 2, 0.5) == {0, 1, 2, 3}
        assert naive_kp_core_vertices(g, 2, 0.67) == set()


class TestNaivePNumbers:
    def test_hand_computed_cascade(self, cascade_graph):
        assert naive_p_number(cascade_graph, 5, 2) == pytest.approx(2 / 3)
        assert naive_p_number(cascade_graph, 3, 2) == pytest.approx(2 / 3)

    def test_outside_k_core_is_none(self, triangle_with_tail):
        assert naive_p_number(triangle_with_tail, 3, 2) is None

    def test_fixed_k_map_covers_k_core(self, triangle_with_tail):
        pn = naive_p_numbers_fixed_k(triangle_with_tail, 2)
        assert set(pn) == {0, 1, 2}

    def test_cycle_all_one(self):
        pn = naive_p_numbers_fixed_k(cycle_graph(5), 2)
        assert set(pn.values()) == {1.0}


class TestNaiveCoreNumbers:
    def test_star(self):
        cn = naive_core_numbers(star_graph(4))
        assert cn[0] == 1
        assert all(cn[v] == 1 for v in range(1, 5))

    def test_complete(self):
        cn = naive_core_numbers(complete_graph(5))
        assert set(cn.values()) == {4}

    def test_isolated(self):
        g = Graph([(0, 1)])
        g.add_vertex(7)
        assert naive_core_numbers(g)[7] == 0
