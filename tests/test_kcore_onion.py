"""Unit tests for the onion decomposition."""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import complete_graph, cycle_graph, erdos_renyi_gnm, star_graph
from repro.kcore.decomposition import core_decomposition
from repro.kcore.onion import onion_decomposition


class TestCoreNumbersAgree:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs(self, seed):
        g = erdos_renyi_gnm(30, 85, seed=seed)
        onion = onion_decomposition(g)
        assert onion.core_numbers == core_decomposition(g).core_numbers


class TestLayers:
    def test_cycle_is_one_layer(self):
        onion = onion_decomposition(cycle_graph(8))
        assert onion.num_layers == 1
        assert set(onion.layers.values()) == {1}

    def test_complete_graph_is_one_layer(self):
        onion = onion_decomposition(complete_graph(5))
        assert onion.num_layers == 1

    def test_path_peels_from_the_ends(self):
        g = Graph([(0, 1), (1, 2), (2, 3), (3, 4)])
        onion = onion_decomposition(g)
        # ends go first, then the next pair, then the middle
        assert onion.layer_of(0) == onion.layer_of(4) == 1
        assert onion.layer_of(1) == onion.layer_of(3) == 2
        assert onion.layer_of(2) == 3

    def test_star_center_and_leaves(self):
        onion = onion_decomposition(star_graph(6))
        # leaves fall in round one; the centre becomes isolated (degree 0
        # <= threshold 1) only in round two
        leaves_layer = {onion.layer_of(v) for v in range(1, 7)}
        assert leaves_layer == {1}
        assert onion.layer_of(0) == 2

    def test_layers_refine_shells(self):
        g = erdos_renyi_gnm(60, 200, seed=9)
        onion = onion_decomposition(g)
        assert all(layer >= 1 for layer in onion.layers.values())
        # every distinct core value opens at least one round of its own
        distinct_cores = set(onion.core_numbers.values())
        assert onion.num_layers >= len(distinct_cores)
        # layer numbers are monotone along the peel: a vertex with a
        # smaller core number never sits in a deeper layer than one whose
        # shell is peeled strictly later
        by_core: dict[int, list[int]] = {}
        for v, layer in onion.layers.items():
            by_core.setdefault(onion.core_numbers[v], []).append(layer)
        cores_sorted = sorted(by_core)
        for lower, higher in zip(cores_sorted, cores_sorted[1:]):
            assert max(by_core[lower]) <= min(by_core[higher])

    def test_vertices_in_layer(self):
        onion = onion_decomposition(star_graph(3))
        assert onion.vertices_in_layer(1) == {1, 2, 3}
        assert onion.vertices_in_layer(2) == {0}

    def test_empty_graph(self):
        onion = onion_decomposition(Graph())
        assert onion.num_layers == 0
        assert onion.layers == {}
