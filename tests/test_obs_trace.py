"""Unit tests for per-request tracing: spans, buffer, switch, exporters."""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ParameterError
from repro.obs import names
from repro.obs.trace import (
    DEFAULT_BUFFER_SIZE,
    NULL_TRACE_SPAN,
    TRACE_ENV_VAR,
    TraceEvent,
    Tracer,
    get_tracer,
    maybe_trace_span,
    refresh_trace_from_env,
    set_tracer,
    trace_active,
    tracing,
)
from repro.obs.trace_export import (
    attribution_rows,
    bucket_of_span,
    chrome_payload,
    read_jsonl,
    slowest_rows,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Isolate every test from a REPRO_TRACE tracer installed at import."""
    previous = set_tracer(None)
    yield
    set_tracer(previous)


# ----------------------------------------------------------------------
# span recording
# ----------------------------------------------------------------------
class TestSpans:
    def test_nested_spans_share_trace_and_link_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner_event, outer_event = tracer.events()
        assert inner_event.name == "inner"
        assert outer_event.name == "outer"
        assert inner_event.trace_id == outer_event.trace_id
        assert inner_event.parent_id == outer_event.span_id
        assert outer_event.parent_id is None
        assert outer.span_id == outer_event.span_id

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.events()
        assert a.trace_id != b.trace_id

    def test_children_are_time_contained_in_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()
        assert outer.ts <= inner.ts
        assert inner.ts + inner.dur <= outer.ts + outer.dur + 1e-6

    def test_set_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("q", k=3) as span:
            span.set("answer_size", 17)
        (event,) = tracer.events()
        assert event.attrs == {"k": 3, "answer_size": 17}

    def test_record_parents_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.record("wait", 1.0, 1.5, site="query")
        wait, outer = tracer.events()
        assert wait.name == "wait"
        assert wait.parent_id == outer.span_id
        assert wait.dur == pytest.approx(0.5)
        assert wait.attrs == {"site": "query"}

    def test_record_clamps_negative_durations(self):
        tracer = Tracer()
        event = tracer.record("wait", 2.0, 1.0)
        assert event.dur == 0.0


class TestBuffer:
    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(buffer_size=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [event.name for event in tracer.events()] == ["b", "c"]
        assert tracer.recorded == 3
        assert tracer.dropped == 1

    def test_invalid_buffer_size_rejected(self):
        with pytest.raises(ParameterError, match="buffer"):
            Tracer(buffer_size=0)

    def test_buffer_size_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_BUFFER", "3")
        assert Tracer().buffer_size == 3
        monkeypatch.setenv("REPRO_TRACE_BUFFER", "garbage")
        assert Tracer().buffer_size == DEFAULT_BUFFER_SIZE

    def test_clear_resets_counts(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.recorded == 0
        assert tracer.dropped == 0


class TestEventSerialization:
    def test_to_dict_round_trips(self):
        tracer = Tracer()
        with tracer.span("q", k=2, hit=True):
            pass
        (event,) = tracer.events()
        clone = TraceEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert clone.to_dict() == event.to_dict()


# ----------------------------------------------------------------------
# process-wide switch
# ----------------------------------------------------------------------
class TestSwitch:
    def test_off_by_default_in_tests(self):
        assert get_tracer() is None
        assert not trace_active()

    def test_maybe_trace_span_is_the_shared_null_when_off(self):
        span = maybe_trace_span("server.query", k=1)
        assert span is NULL_TRACE_SPAN
        with span as s:
            s.set("k", 9)  # no-op, never raises

    def test_tracing_scopes_and_restores(self):
        sentinel = Tracer()
        set_tracer(sentinel)
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert tracer is not sentinel
        assert get_tracer() is sentinel

    def test_refresh_from_env_installs_and_clears(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        assert refresh_trace_from_env() is True
        installed = get_tracer()
        assert installed is not None
        assert refresh_trace_from_env() is True
        assert get_tracer() is installed  # kept, not replaced
        monkeypatch.delenv(TRACE_ENV_VAR)
        assert refresh_trace_from_env() is False
        assert get_tracer() is None

    def test_disabled_hot_path_emits_zero_events(self):
        """With tracing off the peel engines must not record anything."""
        from repro.core.decomposition import kp_core_decomposition
        from repro.graph.generators import erdos_renyi_gnm

        g = erdos_renyi_gnm(30, 90, seed=2)
        kp_core_decomposition(g)
        assert get_tracer() is None  # nothing got installed as a side effect


# ----------------------------------------------------------------------
# cross-process propagation
# ----------------------------------------------------------------------
class TestPropagation:
    def test_context_captures_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            trace_id, span_id = tracer.context()
            assert trace_id == outer.trace_id
            assert span_id == outer.span_id

    def test_worker_tracer_parents_under_context(self):
        parent = Tracer()
        with parent.span("decomp") as root:
            ctx = parent.context()
        worker = Tracer(context=ctx)
        with worker.span("peel", k=3):
            pass
        (peel,) = worker.events()
        assert peel.trace_id == root.trace_id
        assert peel.parent_id == root.span_id

    def test_absorb_merges_serialized_events(self):
        parent = Tracer()
        with parent.span("decomp"):
            ctx = parent.context()
        worker = Tracer(context=ctx)
        with worker.span("peel", k=1):
            pass
        payloads = [event.to_dict() for event in worker.events()]
        assert parent.absorb(payloads) == 1
        names_seen = {event.name for event in parent.events()}
        assert names_seen == {"decomp", "peel"}
        span_ids = {event.span_id for event in parent.events()}
        parent_ids = {
            event.parent_id
            for event in parent.events()
            if event.parent_id is not None
        }
        assert parent_ids <= span_ids  # no orphan parents after the merge


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def _sample_events() -> list[TraceEvent]:
    tracer = Tracer()
    with tracer.span(names.TRACE_SERVER_QUERY, k=2, p=0.5):
        wait_start = time.perf_counter()
        sum(range(1000))  # a real (tiny) wait so timestamps nest properly
        tracer.record(
            names.TRACE_LOCK_READ_WAIT,
            wait_start,
            time.perf_counter(),
            site="query",
        )
        with tracer.span(names.TRACE_LOCK_READ_HOLD, site="query"):
            with tracer.span(names.TRACE_CACHE_PROBE, hit=False):
                pass
            with tracer.span(names.TRACE_QUERY_ANSWER):
                pass
    return tracer.events()


class TestChromeExport:
    def test_payload_passes_validation(self):
        payload = chrome_payload(_sample_events())
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"

    def test_timestamps_rebased_to_microseconds(self):
        payload = chrome_payload(_sample_events())
        ts_values = [event["ts"] for event in payload["traceEvents"]]
        assert min(ts_values) == pytest.approx(0.0, abs=1e-6)
        assert all(event["ph"] == "X" for event in payload["traceEvents"])

    def test_args_carry_span_identity_and_attrs(self):
        payload = chrome_payload(_sample_events())
        by_name = {event["name"]: event for event in payload["traceEvents"]}
        query = by_name[names.TRACE_SERVER_QUERY]
        assert query["args"]["k"] == 2
        assert "trace_id" in query["args"] and "span_id" in query["args"]
        probe = by_name[names.TRACE_CACHE_PROBE]
        assert "parent_id" in probe["args"]

    def test_validator_flags_malformed_payloads(self):
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        bad = {
            "traceEvents": [
                {"name": "", "cat": "x", "ph": "B", "ts": -1, "dur": "a",
                 "pid": 1.5, "tid": True, "args": []}
            ]
        }
        problems = validate_chrome_trace(bad)
        assert any("name" in p for p in problems)
        assert any("ph" in p for p in problems)
        assert any("ts" in p for p in problems)
        assert any("dur" in p for p in problems)
        assert any("pid" in p for p in problems)
        assert any("tid" in p for p in problems)
        assert any("args" in p for p in problems)

    def test_write_chrome_trace_emits_valid_json_file(self, tmp_path):
        events = _sample_events()
        path = tmp_path / "trace.json"
        assert write_chrome_trace(path, events) == len(events)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []


class TestJsonl:
    def test_round_trip_is_lossless(self, tmp_path):
        events = _sample_events()
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(path, events) == len(events)
        restored = read_jsonl(path)
        assert [event.to_dict() for event in restored] == [
            event.to_dict() for event in events
        ]


class TestAttribution:
    def test_bucket_mapping(self):
        assert bucket_of_span(names.TRACE_LOCK_READ_WAIT) == "lock-wait"
        assert bucket_of_span(names.TRACE_LOCK_WRITE_HOLD) == "lock-hold"
        assert bucket_of_span(names.TRACE_CACHE_FILL) == "cache-probe"
        assert bucket_of_span(names.TRACE_PEEL_FIXED_K) == "answer-build"
        assert bucket_of_span("something.else") == "other"

    def test_self_times_sum_to_root_duration(self):
        events = _sample_events()
        headers, rows = attribution_rows(events)
        assert headers[0] == "span"
        self_total = sum(float(row[3]) for row in rows)
        root = next(
            event for event in events
            if event.name == names.TRACE_SERVER_QUERY
        )
        assert self_total == pytest.approx(root.dur * 1e3, rel=0.05, abs=0.05)

    def test_required_buckets_appear(self):
        _, rows = attribution_rows(_sample_events())
        buckets = {row[1] for row in rows}
        assert {"lock-wait", "cache-probe", "answer-build"} <= buckets

    def test_shares_sum_to_one(self):
        _, rows = attribution_rows(_sample_events())
        total = sum(float(row[5].rstrip("%")) for row in rows)
        assert total == pytest.approx(100.0, abs=0.5)

    def test_slowest_rows_sorted_and_bounded(self):
        headers, rows = slowest_rows(_sample_events(), top=2)
        assert headers[0] == "span"
        assert len(rows) == 2
        assert float(rows[0][1]) >= float(rows[1][1])


class TestCatalog:
    def test_trace_names_are_catalogued(self):
        catalog = names.catalog()
        assert "traces" in catalog
        assert names.TRACE_SERVER_QUERY in catalog["traces"]
        assert names.TRACE_PEEL_FIXED_K in catalog["traces"]
