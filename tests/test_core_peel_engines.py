"""Equivalence and unit tests for the fixed-k peeling engines.

The contract under test: every engine in :data:`repro.core.peel_engines.
ENGINES` produces byte-identical ``(order, p_numbers)`` for every graph
and every ``k`` — including ties at the minimum fraction and
degree-violation cascades, where naive heap/bucket implementations
diverge first.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.compact import CompactAdjacency
from repro.graph.generators import erdos_renyi_gnm
from repro.kcore.decomposition import core_numbers_compact
from repro.core.decomposition import kp_core_decomposition
from repro.core.peel_engines import (
    DEFAULT_ENGINE,
    ENGINES,
    available_engines,
    get_engine,
    peel_fixed_k_bucket,
    peel_fixed_k_heap,
)


def _prepared(graph: Graph):
    """(snapshot, core numbers) ready for any engine."""
    snapshot = CompactAdjacency(graph)
    core, _ = core_numbers_compact(snapshot)
    snapshot.sort_neighbors_by_rank_desc(core)
    return snapshot, core


def _assert_engines_identical(graph: Graph) -> None:
    snapshot, core = _prepared(graph)
    degeneracy = max(core, default=0)
    for k in range(1, degeneracy + 1):
        results = {
            name: engine(snapshot, core, k) for name, engine in ENGINES.items()
        }
        reference = results.pop("heap")
        for name, result in results.items():
            assert result == reference, (name, k)


class TestRegistry:
    def test_known_engines(self):
        assert available_engines() == ["bucket", "heap"]
        assert DEFAULT_ENGINE in ENGINES

    def test_get_engine_resolves(self):
        assert get_engine("bucket") is peel_fixed_k_bucket
        assert get_engine("heap") is peel_fixed_k_heap

    def test_get_engine_rejects_unknown(self):
        with pytest.raises(ParameterError, match="unknown peel engine"):
            get_engine("quantum")


class TestEngineBasics:
    @pytest.mark.parametrize("name", ["bucket", "heap"])
    def test_empty_k_core(self, triangle, name):
        snapshot, core = _prepared(triangle)
        assert get_engine(name)(snapshot, core, 3) == ([], [])

    @pytest.mark.parametrize("name", ["bucket", "heap"])
    def test_triangle_all_peel_at_one(self, triangle, name):
        snapshot, core = _prepared(triangle)
        order, p_numbers = get_engine(name)(snapshot, core, 2)
        assert sorted(order) == [0, 1, 2]
        assert p_numbers == [1.0, 1.0, 1.0]  # noqa: KP002 exact-double oracle

    @pytest.mark.parametrize("name", ["bucket", "heap"])
    def test_canonical_order_within_rounds(self, name):
        # K4 peels in a single round at level 1.0: canonical order is by
        # internal id regardless of engine-internal tie-breaking.
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        snapshot, core = _prepared(g)
        order, p_numbers = get_engine(name)(snapshot, core, 3)
        assert order == sorted(order)
        assert len(set(p_numbers)) == 1


class TestEngineEquivalence:
    def test_tie_at_minimum_fraction(self):
        # Two components whose minimum fractions tie exactly at 1/2:
        # a K4 whose vertex 0 carries three pendants (3/6 = 0.5) and a K5
        # whose vertex 10 carries four pendants (4/8 = 0.5).  Both seeds
        # must start the same round in every engine.
        edges = [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
            (0, 4), (0, 5), (0, 6),
            (10, 11), (10, 12), (10, 13), (10, 14),
            (11, 12), (11, 13), (11, 14), (12, 13), (12, 14), (13, 14),
            (10, 15), (10, 16), (10, 17), (10, 18),
        ]
        _assert_engines_identical(Graph(edges))

    def test_degree_violation_cascade(self):
        # At k=3 the K5's satellites die immediately; deleting the K4-ring
        # bridge drags vertices below degree 3 mid-round, exercising the
        # sentinel path where the heap uses -1.0 keys and the bucket engine
        # must cascade within the round.
        edges = [
            (0, 1), (0, 2), (0, 3), (0, 4),
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4),
            (5, 0), (5, 1), (5, 2),
            (6, 5), (6, 0), (6, 1),
            (7, 6), (7, 5), (7, 0),
        ]
        _assert_engines_identical(Graph(edges))

    def test_inherited_p_number_cascade(self, cascade_graph):
        _assert_engines_identical(cascade_graph)

    def test_figure1_like(self, figure1_like_graph):
        _assert_engines_identical(figure1_like_graph)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_graph_sweep(self, random_graph_factory, seed):
        _assert_engines_identical(random_graph_factory(seed))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_denser_random_graphs(self, seed):
        _assert_engines_identical(erdos_renyi_gnm(40, 300, seed=seed))

    @given(
        st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_engines_agree(self, edges):
        _assert_engines_identical(Graph(edges))


class TestDecompositionEngineParameter:
    def test_engine_selection_end_to_end(self, figure1_like_graph):
        by_engine = {
            name: kp_core_decomposition(figure1_like_graph, engine=name)
            for name in available_engines()
        }
        reference = by_engine.pop("heap")
        for name, decomposition in by_engine.items():
            assert decomposition.degeneracy == reference.degeneracy
            for k, fixed in reference.arrays.items():
                other = decomposition.arrays[k]
                assert tuple(other.order) == tuple(fixed.order), (name, k)
                assert tuple(other.p_numbers) == tuple(fixed.p_numbers), (
                    name,
                    k,
                )

    def test_unknown_engine_rejected(self, triangle):
        with pytest.raises(ParameterError, match="unknown peel engine"):
            kp_core_decomposition(triangle, engine="quantum")
