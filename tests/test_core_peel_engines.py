"""Equivalence and unit tests for the fixed-k peeling engines.

The contract under test: every engine in :data:`repro.core.peel_engines.
ENGINES` produces byte-identical ``(order, p_numbers)`` for every graph
and every ``k`` — including ties at the minimum fraction and
degree-violation cascades, where naive heap/bucket implementations
diverge first.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.graph.adjacency import Graph
from repro.graph.compact import CompactAdjacency
from repro.graph.generators import erdos_renyi_gnm
from repro.kcore.decomposition import core_numbers_compact
from repro.core.decomposition import kp_core_decomposition
from repro.core import peel_flat
from repro.core.peel_engines import (
    DEFAULT_ENGINE,
    ENGINES,
    BucketScratch,
    available_engines,
    get_engine,
    make_scratch,
    peel_fixed_k_bucket,
    peel_fixed_k_heap,
)
from repro.core.peel_flat import (
    FlatScratch,
    composite_key,
    key_scale,
    peel_fixed_k_flat,
    peel_fixed_k_flat_numpy,
)

ALL_ENGINES = ["bucket", "flat", "flat-numpy", "heap"]


def _prepared(graph: Graph):
    """(snapshot, core numbers) ready for any engine."""
    snapshot = CompactAdjacency(graph)
    core, _ = core_numbers_compact(snapshot)
    snapshot.sort_neighbors_by_rank_desc(core)
    return snapshot, core


def _assert_engines_identical(graph: Graph) -> None:
    """All engines (scratch-free and scratch-shared) agree pairwise."""
    snapshot, core = _prepared(graph)
    degeneracy = max(core, default=0)
    scratches = {name: make_scratch(name, snapshot, core) for name in ENGINES}
    for k in range(1, degeneracy + 1):
        results = {
            name: engine(snapshot, core, k) for name, engine in ENGINES.items()
        }
        reference = results.pop("heap")
        for name, result in results.items():
            assert result == reference, (name, k)
        for name, engine in ENGINES.items():
            shared = engine(snapshot, core, k, scratch=scratches[name])
            assert shared == reference, (name, k, "scratch")


class TestRegistry:
    def test_known_engines(self):
        assert available_engines() == ALL_ENGINES
        assert DEFAULT_ENGINE == "flat"
        assert DEFAULT_ENGINE in ENGINES

    def test_get_engine_resolves(self):
        assert get_engine("bucket") is peel_fixed_k_bucket
        assert get_engine("heap") is peel_fixed_k_heap
        assert get_engine("flat") is peel_fixed_k_flat
        assert get_engine("flat-numpy") is peel_fixed_k_flat_numpy

    def test_get_engine_rejects_unknown(self):
        with pytest.raises(ParameterError, match="unknown peel engine"):
            get_engine("quantum")


class TestEngineBasics:
    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_empty_k_core(self, triangle, name):
        snapshot, core = _prepared(triangle)
        assert get_engine(name)(snapshot, core, 3) == ([], [])

    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_triangle_all_peel_at_one(self, triangle, name):
        snapshot, core = _prepared(triangle)
        order, p_numbers = get_engine(name)(snapshot, core, 2)
        assert sorted(order) == [0, 1, 2]
        assert p_numbers == [1.0, 1.0, 1.0]  # noqa: KP002 exact-double oracle

    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_k_below_one_rejected(self, triangle, name):
        snapshot, core = _prepared(triangle)
        with pytest.raises(ParameterError, match="k must be >= 1"):
            get_engine(name)(snapshot, core, 0)

    @pytest.mark.parametrize("name", ALL_ENGINES)
    def test_canonical_order_within_rounds(self, name):
        # K4 peels in a single round at level 1.0: canonical order is by
        # internal id regardless of engine-internal tie-breaking.
        g = Graph([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        snapshot, core = _prepared(g)
        order, p_numbers = get_engine(name)(snapshot, core, 3)
        assert order == sorted(order)
        assert len(set(p_numbers)) == 1


class TestEngineEquivalence:
    def test_tie_at_minimum_fraction(self):
        # Two components whose minimum fractions tie exactly at 1/2:
        # a K4 whose vertex 0 carries three pendants (3/6 = 0.5) and a K5
        # whose vertex 10 carries four pendants (4/8 = 0.5).  Both seeds
        # must start the same round in every engine.
        edges = [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
            (0, 4), (0, 5), (0, 6),
            (10, 11), (10, 12), (10, 13), (10, 14),
            (11, 12), (11, 13), (11, 14), (12, 13), (12, 14), (13, 14),
            (10, 15), (10, 16), (10, 17), (10, 18),
        ]
        _assert_engines_identical(Graph(edges))

    def test_degree_violation_cascade(self):
        # At k=3 the K5's satellites die immediately; deleting the K4-ring
        # bridge drags vertices below degree 3 mid-round, exercising the
        # sentinel path where the heap uses -1.0 keys and the bucket engine
        # must cascade within the round.
        edges = [
            (0, 1), (0, 2), (0, 3), (0, 4),
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4),
            (5, 0), (5, 1), (5, 2),
            (6, 5), (6, 0), (6, 1),
            (7, 6), (7, 5), (7, 0),
        ]
        _assert_engines_identical(Graph(edges))

    def test_inherited_p_number_cascade(self, cascade_graph):
        _assert_engines_identical(cascade_graph)

    def test_figure1_like(self, figure1_like_graph):
        _assert_engines_identical(figure1_like_graph)

    @pytest.mark.parametrize("seed", range(12))
    def test_random_graph_sweep(self, random_graph_factory, seed):
        _assert_engines_identical(random_graph_factory(seed))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_denser_random_graphs(self, seed):
        _assert_engines_identical(erdos_renyi_gnm(40, 300, seed=seed))

    def test_single_vertex_graph(self):
        g = Graph()
        g.add_vertex("lonely")
        # Degeneracy 0: no k to peel, but every engine must agree that the
        # 1-core is empty.
        snapshot, core = _prepared(g)
        for name in ALL_ENGINES:
            assert get_engine(name)(snapshot, core, 1) == ([], [])

    def test_star_max_degree_graph(self):
        # A hub of maximum degree stresses the composite-key scale: the
        # ladder of the hub holds d_max distinct fractions a/d_max.
        hub_edges = [("hub", i) for i in range(25)]
        _assert_engines_identical(Graph(hub_edges))

    def test_max_degree_clique_with_pendants(self):
        edges = [(u, w) for u in range(8) for w in range(u + 1, 8)]
        edges += [(0, f"p{i}") for i in range(12)]
        _assert_engines_identical(Graph(edges))

    @given(
        st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_engines_agree(self, edges):
        _assert_engines_identical(Graph(edges))


class TestCompositeKeys:
    """The flat engines' integer keys must order exactly like rationals."""

    def test_key_ordering_equals_fraction_ordering_exhaustive(self):
        for d_max in (1, 2, 3, 7, 16, 31):
            scale = key_scale(d_max)
            pairs = [
                (a, b) for b in range(1, d_max + 1) for a in range(0, b + 1)
            ]
            for a1, b1 in pairs:
                for a2, b2 in pairs:
                    k1 = composite_key(a1, b1, scale)
                    k2 = composite_key(a2, b2, scale)
                    f1, f2 = Fraction(a1, b1), Fraction(a2, b2)
                    assert (k1 < k2) == (f1 < f2), (a1, b1, a2, b2, d_max)
                    assert (k1 == k2) == (f1 == f2), (a1, b1, a2, b2, d_max)

    @given(
        st.integers(1, 10_000),
        st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
        st.tuples(st.integers(1, 10_000), st.integers(1, 10_000)),
    )
    @settings(max_examples=300, deadline=None)
    def test_key_ordering_property(self, d_max, numerators, denominators):
        b1 = 1 + (denominators[0] - 1) % d_max
        b2 = 1 + (denominators[1] - 1) % d_max
        a1 = numerators[0] % (b1 + 1)
        a2 = numerators[1] % (b2 + 1)
        scale = key_scale(d_max)
        k1 = composite_key(a1, b1, scale)
        k2 = composite_key(a2, b2, scale)
        f1, f2 = Fraction(a1, b1), Fraction(a2, b2)
        assert (k1 < k2) == (f1 < f2)
        assert (k1 == k2) == (f1 == f2)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ParameterError, match="denominator"):
            composite_key(1, 0, key_scale(4))


class TestEngineScratch:
    """make_scratch semantics: reuse, validation, out-of-order k."""

    def test_make_scratch_types(self, figure1_like_graph):
        snapshot, core = _prepared(figure1_like_graph)
        assert isinstance(make_scratch("bucket", snapshot, core), BucketScratch)
        assert isinstance(make_scratch("flat", snapshot, core), FlatScratch)
        assert isinstance(
            make_scratch("flat-numpy", snapshot, core), FlatScratch
        )
        assert make_scratch("heap", snapshot, core) is None

    def test_make_scratch_rejects_unknown_engine(self, triangle):
        snapshot, core = _prepared(triangle)
        with pytest.raises(ParameterError, match="unknown peel engine"):
            make_scratch("quantum", snapshot, core)

    @pytest.mark.parametrize("name", ["bucket", "flat", "flat-numpy"])
    def test_wrong_snapshot_rejected(self, name):
        snapshot_a, core_a = _prepared(erdos_renyi_gnm(20, 60, seed=1))
        snapshot_b, _ = _prepared(erdos_renyi_gnm(20, 60, seed=2))
        scratch = make_scratch(name, snapshot_a, core_a)
        with pytest.raises(ParameterError, match="different snapshot"):
            get_engine(name)(snapshot_b, core_a, 1, scratch=scratch)

    @pytest.mark.parametrize("name", ["bucket", "flat", "flat-numpy"])
    def test_wrong_scratch_type_rejected(self, triangle, name):
        snapshot, core = _prepared(triangle)
        with pytest.raises(ParameterError, match="Scratch"):
            get_engine(name)(snapshot, core, 1, scratch=object())

    @pytest.mark.parametrize("name", ["flat", "flat-numpy"])
    def test_out_of_order_k_rebuilds_prefixes(self, name):
        # Descending and repeated k exercise FlatScratch's backward
        # prefix-length rebuild — results must match fresh calls exactly.
        g = erdos_renyi_gnm(40, 200, seed=7)
        snapshot, core = _prepared(g)
        degeneracy = max(core, default=0)
        engine = get_engine(name)
        fresh = {
            k: engine(snapshot, core, k) for k in range(1, degeneracy + 1)
        }
        scratch = make_scratch(name, snapshot, core)
        sequence = (
            list(range(degeneracy, 0, -1))
            + [1, degeneracy]
            + list(range(1, degeneracy + 1))
        )
        for k in sequence:
            assert engine(snapshot, core, k, scratch=scratch) == fresh[k], k


class TestNumpyFallback:
    def test_flat_numpy_without_numpy_matches(self, monkeypatch):
        g = erdos_renyi_gnm(30, 120, seed=5)
        snapshot, core = _prepared(g)
        degeneracy = max(core, default=0)
        with_numpy = {
            k: peel_fixed_k_flat_numpy(snapshot, core, k)
            for k in range(1, degeneracy + 1)
        }
        monkeypatch.setattr(peel_flat, "_np", None)
        assert not peel_flat.have_numpy()
        without_numpy = {
            k: peel_fixed_k_flat_numpy(snapshot, core, k)
            for k in range(1, degeneracy + 1)
        }
        assert without_numpy == with_numpy

    def test_fallback_scratch_has_no_numpy_views(self, monkeypatch):
        monkeypatch.setattr(peel_flat, "_np", None)
        snapshot, core = _prepared(erdos_renyi_gnm(15, 40, seed=3))
        scratch = FlatScratch(snapshot, core, use_numpy=True)
        assert scratch.core_np is None


class TestDecompositionEngineParameter:
    def test_engine_selection_end_to_end(self, figure1_like_graph):
        by_engine = {
            name: kp_core_decomposition(figure1_like_graph, engine=name)
            for name in available_engines()
        }
        reference = by_engine.pop("heap")
        for name, decomposition in by_engine.items():
            assert decomposition.degeneracy == reference.degeneracy
            for k, fixed in reference.arrays.items():
                other = decomposition.arrays[k]
                assert tuple(other.order) == tuple(fixed.order), (name, k)
                assert tuple(other.p_numbers) == tuple(fixed.p_numbers), (
                    name,
                    k,
                )

    def test_unknown_engine_rejected(self, triangle):
        with pytest.raises(ParameterError, match="unknown peel engine"):
            kp_core_decomposition(triangle, engine="quantum")
